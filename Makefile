GO ?= go

# Every test target carries an explicit -timeout and every smoke target a
# wall-clock deadline: a reintroduced livelock (the watchdog tier's whole
# reason to exist) must fail CI in minutes, not ride the 10-minute
# per-package default or hang a -race smoke until the job is killed.
SMOKE_DEADLINE ?= 600

.PHONY: all fmt fmt-check vet build test race bench bench-smoke benchdiff baseline bench-wallclock bench-wallclock-scaling baseline-wallclock tables load-smoke load-scale-smoke shard-smoke loaded-smoke docs-check

all: build test

## fmt: rewrite all Go files with gofmt
fmt:
	gofmt -w .

## fmt-check: fail if any file is not gofmt-clean (what CI runs)
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

## vet: static analysis
vet:
	$(GO) vet ./...

## build: compile every package
build:
	$(GO) build ./...

## test: the tier-1 suite
test:
	$(GO) test -timeout 240s ./...

## race: the tier-1 suite under the race detector
race:
	$(GO) test -race -timeout 600s ./...

## bench: the full benchmark suite with memory stats
bench:
	$(GO) test -run='^$$' -bench=. -benchmem -timeout 1800s .

## bench-smoke: one iteration of every benchmark (deterministic metrics)
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -timeout 300s .

## benchdiff: compare the smoke run's paper metrics against the baseline
benchdiff:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -timeout 300s . | \
		$(GO) run ./cmd/benchdiff -baseline BENCH_baseline.json

## baseline: regenerate BENCH_baseline.json from a smoke run
baseline:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -timeout 300s . | \
		$(GO) run ./cmd/benchdiff -write BENCH_baseline.json

## bench-wallclock: run the wall-clock tier and gate ns/op + allocation
## counts against BENCH_wallclock.json with a tolerance band. CI runs it
## with WALLCLOCK_TOL_NS=1 (gate allocations only — runner hardware
## differs from the machine that wrote the ns/op baseline).
WALLCLOCK_TOL_NS ?= 0.5
WALLCLOCK_TOL_BYTES ?= 0.35
bench-wallclock:
	$(GO) test -run='^$$' -bench=Wallclock -benchmem -benchtime=2x -timeout 600s . | \
		$(GO) run ./cmd/benchdiff -wallclock -tol-ns $(WALLCLOCK_TOL_NS) \
			-tol-bytes $(WALLCLOCK_TOL_BYTES) \
			-baseline BENCH_wallclock.json

## bench-wallclock-scaling: the sweep pair at GOMAXPROCS 1 and 2, fed
## through benchdiff's scaling report (parallel/serial ns/op ratio per
## GOMAXPROCS; warns non-fatally when parallel is not faster). No
## baseline gate — this target measures worker-affine sharding, not
## regressions.
bench-wallclock-scaling:
	$(GO) test -run='^$$' -bench='WallclockSweep' -benchmem -benchtime=2x -cpu=1,2 -timeout 600s . | \
		$(GO) run ./cmd/benchdiff -wallclock -scaling

## baseline-wallclock: regenerate BENCH_wallclock.json on this machine
baseline-wallclock:
	$(GO) test -run='^$$' -bench=Wallclock -benchmem -benchtime=2x -timeout 600s . | \
		$(GO) run ./cmd/benchdiff -wallclock -write BENCH_wallclock.json

## tables: regenerate every table and figure of the paper's evaluation
tables:
	$(GO) run ./cmd/tables

## load-smoke: a 16-client fan-in under both PCB organizations (what CI runs)
load-smoke:
	timeout $(SMOKE_DEADLINE) $(GO) run ./cmd/load -workload fanin -hosts 17 -reqs 4 -compare -seed 1994 -parallel 2 -json > /dev/null

## load-scale-smoke: a 1024-host fan-in on the fat-tree fabric under the
## race detector — the whole scale path (on-demand VC setup, trunk VCI
## allocation, streaming statistics, staggered starts) end to end (what
## CI runs). The stagger stays above the server's per-client service
## time so the smoke cannot drift into retransmission collapse.
load-scale-smoke:
	timeout $(SMOKE_DEADLINE) $(GO) run -race ./cmd/load -workload fanin -hosts 1024 -reqs 1 -hashpcb \
		-fabric fattree -stream on -stagger 5500 -json > /dev/null

## shard-smoke: a 1024-host fat-tree fan-in split across 4 shards under
## the race detector (what CI runs). The shard workers really do run
## concurrently, so this exercises every cross-shard path — staged cell
## injection, barrier control transfers, VC setup across cuts — with
## the race detector watching, and the run's digest still matches the
## serial golden (the sharded golden tests pin that separately).
shard-smoke:
	timeout $(SMOKE_DEADLINE) $(GO) run -race ./cmd/load -workload fanin -hosts 1024 -reqs 1 -hashpcb \
		-fabric fattree -stream on -stagger 5500 -shards 4 -json > /dev/null

## loaded-smoke: the congested-regime tier end to end under the race
## detector (what CI runs): both transports (TCP and reliable UDP)
## through the loaded fan-in study with RED on every egress port,
## Gilbert–Elliott burst loss, and heavy-tailed cross traffic.
loaded-smoke:
	timeout $(SMOKE_DEADLINE) $(GO) run -race ./cmd/load -workload loaded -hosts 6 -reqs 4 \
		-qdisc red -burstloss 0.002 -crosstraffic 2 -seed 1994 -json > /dev/null

## docs-check: execute every command quoted in README.md and docs/ (smoke mode)
docs-check:
	timeout $(SMOKE_DEADLINE) $(GO) run ./cmd/docscheck README.md docs
