// Fault injection and the no-progress watchdog: the lab-level half of
// the deterministic fault tier. A sim.FaultSchedule is plain data; this
// file turns it into scheduled events against an assembled topology —
// link flips as down flags on the entities whose receive paths enforce
// them, port failures as VC teardown plus a down port, host crashes as
// mid-run transport-stack resets reusing the Reset machinery — and arms
// the watchdog that converts a recovery that never happens into a
// failing run with a diagnostic instead of a hang.
package lab

import (
	"fmt"
	"strings"

	"repro/internal/sim"
	"repro/internal/tcp"
)

// faultState is the lab's per-entity outage bookkeeping. Down flags are
// reference-counted so overlapping outages of one entity (two flap
// windows that intersect) restore the link only when the LAST outage
// lifts. The adapter counts are only ever touched from the owning
// host's event loop and the port counts from the port-owning switch's
// loop, so sharded link flips stay race-free without locks.
type faultState struct {
	adapterRefs []int
	portRefs    []int
	crashHooks  map[int][]func()
	restart     map[int][]func()
}

func (l *Lab) faults() *faultState {
	if l.faultState == nil {
		l.faultState = &faultState{
			adapterRefs: make([]int, len(l.Hosts)),
			portRefs:    make([]int, len(l.Hosts)),
			crashHooks:  make(map[int][]func()),
			restart:     make(map[int][]func()),
		}
	}
	return l.faultState
}

// OnHostCrash registers fn to run when host i's FaultHostCrash fires,
// after the TCP stack has crashed. Transport state the lab cannot see —
// a workload's rudp endpoint — registers its own teardown here.
func (l *Lab) OnHostCrash(i int, fn func()) {
	fs := l.faults()
	fs.crashHooks[i] = append(fs.crashHooks[i], fn)
}

// OnHostRestart registers fn to run when host i's FaultHostRestart
// fires, after the link is back up and the TCP stack's crashed
// connections are reaped — the hook a workload uses to re-listen and
// respawn the host's server processes.
func (l *Lab) OnHostRestart(i int, fn func()) {
	fs := l.faults()
	fs.restart[i] = append(fs.restart[i], fn)
}

// ScheduleFaults validates the schedule against the topology and
// schedules every event on the lab's event loop. Serial labs accept
// every fault kind; a sharded cluster's hosts live on other event
// loops, so a cluster schedules through Cluster.ScheduleFaults instead.
func (l *Lab) ScheduleFaults(s sim.FaultSchedule) error {
	if l.ownerShards > 1 {
		return fmt.Errorf("lab: testbed is sharded %d ways; schedule faults through Cluster.ScheduleFaults", l.ownerShards)
	}
	if err := s.Validate(len(l.Hosts)); err != nil {
		return err
	}
	l.faults() // allocate the refcounts before the run
	for _, ev := range s {
		ev := ev
		l.Env.At(ev.At, "fault."+ev.Kind.String(), func() { l.applyFault(ev) })
	}
	return nil
}

// applyFault executes one fault event against the live topology.
func (l *Lab) applyFault(ev sim.FaultEvent) {
	h := l.Hosts[ev.Host]
	switch ev.Kind {
	case sim.FaultLinkDown:
		l.flipAdapter(ev.Host, true)
		l.flipPort(ev.Host, true)
	case sim.FaultLinkUp:
		l.flipAdapter(ev.Host, false)
		l.flipPort(ev.Host, false)
	case sim.FaultPortFail:
		l.flipAdapter(ev.Host, true)
		l.flipPort(ev.Host, true)
		if l.Fabric != nil {
			// Tear down every VC path through the failed port so that
			// recovery re-routes through on-demand VC setup instead of
			// resuming stale routes.
			l.Fabric.FailHostPort(ev.Host)
		}
	case sim.FaultHostCrash:
		l.flipAdapter(ev.Host, true)
		l.flipPort(ev.Host, true)
		h.TCP.Crash()
		for _, fn := range l.faults().crashHooks[ev.Host] {
			fn()
		}
	case sim.FaultHostRestart:
		l.flipAdapter(ev.Host, false)
		l.flipPort(ev.Host, false)
		// Every operation blocked on a crashed socket unwound within
		// microseconds of the crash; downtime is orders of magnitude
		// longer, so the buffered chains are safe to reap now.
		h.TCP.ReapCrashed()
		for _, fn := range l.faults().restart[ev.Host] {
			fn()
		}
	}
}

// flipAdapter raises or lowers host i's access-link outage count and
// applies the resulting down state to its adapter. On the two-host
// switchless fiber the "link" is the pair's only fiber, so both
// adapters follow the combined count — a point-to-point link is down in
// both directions or neither. (An Ethernet adapter gates both its
// receive path and its own frame delivery, so one flag covers both
// directions there; a fabric's from-host direction dies at the switch
// port, see flipPort.)
func (l *Lab) flipAdapter(i int, down bool) {
	fs := l.faults()
	if down {
		fs.adapterRefs[i]++
	} else if fs.adapterRefs[i] > 0 {
		fs.adapterRefs[i]--
	}
	h := l.Hosts[i]
	if h.EthAdapter != nil {
		h.EthAdapter.SetDown(fs.adapterRefs[i] > 0)
		return
	}
	if l.Fabric == nil && len(l.Hosts) == 2 {
		fiberDown := fs.adapterRefs[0] > 0 || fs.adapterRefs[1] > 0
		l.Hosts[0].ATMAdapter.SetDown(fiberDown)
		l.Hosts[1].ATMAdapter.SetDown(fiberDown)
		return
	}
	h.ATMAdapter.SetDown(fs.adapterRefs[i] > 0)
}

// flipPort raises or lowers the outage count of host i's switch access
// port (the entity that drops the from-host direction of a fabric
// outage). A no-op off ATM fabrics, which have no switch ports.
func (l *Lab) flipPort(i int, down bool) {
	if l.Fabric == nil {
		return
	}
	fs := l.faults()
	if down {
		fs.portRefs[i]++
	} else if fs.portRefs[i] > 0 {
		fs.portRefs[i]--
	}
	l.Fabric.HostPort(i).SetDown(fs.portRefs[i] > 0)
}

// ArmWatchdog installs a no-progress watchdog on every event loop the
// lab's hosts run on (one loop serial, one per shard under a cluster)
// and returns it so the workload can report progress. A zero horizon
// selects sim.DefaultWatchdogHorizon. The diagnostic built at fire time
// names the stuck connections the firing loop can see.
func (l *Lab) ArmWatchdog(horizon sim.Time) *sim.Watchdog {
	w := sim.NewWatchdog(horizon)
	w.OnFire(l.watchdogDiag)
	l.Env.SetWatchdog(w)
	for _, h := range l.Hosts {
		h.Kern.Env.SetWatchdog(w)
	}
	l.wd = w
	return w
}

// watchdogDiag builds the watchdog's abort diagnostic: a histogram of
// the stalled loop's pending events (a livelock is typically thousands
// of copies of the same timer) plus every non-closed TCP connection on
// the hosts that loop owns, with its state and retransmission backoff —
// the "who is stuck" a hang never reports. Only hosts on the firing
// loop are walked: under sharded execution other shards' state is still
// being mutated by their own goroutines.
func (l *Lab) watchdogDiag(e *sim.Env) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\n  pending events: %s", e.PendingSummary(8))
	const maxConns = 16
	listed, stuck := 0, 0
	for i, h := range l.Hosts {
		if h.Kern.Env != e {
			continue
		}
		for _, ent := range h.TCP.Table.Entries() {
			c, ok := ent.Owner.(*tcp.Conn)
			if !ok || c.State() == tcp.StateClosed {
				continue
			}
			stuck++
			if listed >= maxConns {
				continue
			}
			listed++
			k := ent.Key
			fmt.Fprintf(&b, "\n  %s %d:%d->%d.%d.%d.%d:%d %v rexmt-shift %d",
				hostName(i), k.LocalAddr&0xff, k.LocalPort,
				k.RemoteAddr>>24, (k.RemoteAddr>>16)&0xff, (k.RemoteAddr>>8)&0xff, k.RemoteAddr&0xff,
				k.RemotePort, c.State(), c.RexmtShift())
		}
	}
	if stuck > listed {
		fmt.Fprintf(&b, "\n  ... and %d more connections", stuck-listed)
	}
	if stuck == 0 {
		b.WriteString("\n  no open TCP connections on the stalled loop (see pending events)")
	}
	return b.String()
}

// Watchdog returns the armed watchdog, or nil.
func (l *Lab) Watchdog() *sim.Watchdog { return l.wd }

// ScheduleFaults installs a fault schedule on a sharded cluster. Only
// the shard-safe kinds (link flips) are accepted: port failures and
// host crashes mutate routed-fabric and stack state across shard
// boundaries. Each host's adapter flip is scheduled on the loop that
// owns the host; the matching switch-port flip on the loop that owns
// the port (the core's shard for a hub, the host's own shard for a
// fat-tree leaf), so every mutation happens on the goroutine that
// already owns the entity.
func (c *Cluster) ScheduleFaults(s sim.FaultSchedule) error {
	if len(c.Shards) == 1 {
		return c.Lab.ScheduleFaults(s)
	}
	if !s.ShardSafe() {
		return fmt.Errorf("lab: sharded execution accepts only link-flip faults; port failures and host crashes mutate cross-shard state")
	}
	l := c.Lab
	if err := s.Validate(len(l.Hosts)); err != nil {
		return err
	}
	l.faults()
	for _, ev := range s {
		ev := ev
		down := ev.Kind == sim.FaultLinkDown
		c.EnvOf(ev.Host).At(ev.At, "fault."+ev.Kind.String(),
			func() { l.flipAdapter(ev.Host, down) })
		c.portEnv(ev.Host).At(ev.At, "fault.port."+ev.Kind.String(),
			func() { l.flipPort(ev.Host, down) })
	}
	return nil
}

// portEnv returns the event loop owning host i's switch access port: a
// fat-tree host's port is on its leaf (the host's own shard); a hub
// host's port is on the core, which always lives in shard 0.
func (c *Cluster) portEnv(i int) *sim.Env {
	if c.Lab.Config.Fabric == FabricFatTree {
		return c.EnvOf(i)
	}
	return c.Shards[0].Env
}

// ArmWatchdog arms one shared watchdog across every shard's event loop.
func (c *Cluster) ArmWatchdog(horizon sim.Time) *sim.Watchdog {
	return c.Lab.ArmWatchdog(horizon)
}
