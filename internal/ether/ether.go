// Package ether implements the Ethernet substrate used as the paper's
// comparison link (Table 1): frame encapsulation with a real FCS, a
// LANCE-style adapter model pacing a 10 Mb/s wire, a shared Segment (a
// broadcast domain any number of stations attach to, with destination-MAC
// filtering), and a driver implementing ip.NetIf.
//
// The model captures the two properties Table 1 turns on: a much larger
// fixed per-packet driver/adapter cost than the TCA-100, and a wire an
// order of magnitude slower, so that small-transfer latency is dominated
// by the driver gap and large-transfer latency by bandwidth.
package ether

import (
	"fmt"
	"hash/crc32"

	"repro/internal/cost"
	"repro/internal/ip"
	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/sim"
	"repro/internal/trace"
)

const (
	// HeaderLen is destination + source + type.
	HeaderLen = 14
	// FCSLen is the frame check sequence.
	FCSLen = 4
	// MTU is the Ethernet payload limit; the paper's 1400-byte transfer
	// size is "the Ethernet MTU minus protocol headers".
	MTU = 1500
	// MinPayload pads short frames to the 64-byte minimum.
	MinPayload = 46
	// PreambleBytes precede every frame on the wire.
	PreambleBytes = 8
	// EtherTypeIPv4 is the type field for IP datagrams.
	EtherTypeIPv4 = 0x0800
)

// fcs is a real CRC-32 (IEEE polynomial) over the frame. The standard
// library's table/SIMD implementation computes the same function as the
// reflected bitwise loop this replaced (fcsBitwise, kept as the test
// reference); frames carry identical FCS bytes either way.
func fcs(b []byte) uint32 {
	return crc32.ChecksumIEEE(b)
}

// fcsBitwise is the reference CRC-32: IEEE polynomial 0xedb88320,
// reflected, one bit at a time.
func fcsBitwise(b []byte) uint32 {
	crc := ^uint32(0)
	for _, v := range b {
		crc ^= uint32(v)
		for i := 0; i < 8; i++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ 0xedb88320
			} else {
				crc >>= 1
			}
		}
	}
	return ^crc
}

// Frame is a raw Ethernet frame (header + payload + FCS).
type Frame []byte

// Encapsulate builds a frame around payload, padding to the minimum size
// and appending a real FCS.
func Encapsulate(dst, src [6]byte, etherType uint16, payload []byte) Frame {
	n := len(payload)
	if n < MinPayload {
		n = MinPayload
	}
	f := make([]byte, HeaderLen+n+FCSLen)
	copy(f[0:6], dst[:])
	copy(f[6:12], src[:])
	f[12] = byte(etherType >> 8)
	f[13] = byte(etherType)
	copy(f[HeaderLen:], payload)
	c := fcs(f[:HeaderLen+n])
	f[HeaderLen+n] = byte(c >> 24)
	f[HeaderLen+n+1] = byte(c >> 16)
	f[HeaderLen+n+2] = byte(c >> 8)
	f[HeaderLen+n+3] = byte(c)
	return f
}

// Decapsulate verifies the FCS and returns the payload (possibly padded)
// and type. ok is false for a corrupt or short frame.
func Decapsulate(f Frame) (payload []byte, etherType uint16, ok bool) {
	if len(f) < HeaderLen+MinPayload+FCSLen {
		return nil, 0, false
	}
	body := f[:len(f)-FCSLen]
	tail := f[len(f)-FCSLen:]
	want := uint32(tail[0])<<24 | uint32(tail[1])<<16 | uint32(tail[2])<<8 | uint32(tail[3])
	if fcs(body) != want {
		return nil, 0, false
	}
	etherType = uint16(f[12])<<8 | uint16(f[13])
	return f[HeaderLen : len(f)-FCSLen], etherType, true
}

// Broadcast is the all-stations destination address. Frames addressed to
// it are delivered to every station on the segment except the sender.
var Broadcast = [6]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// Segment is a shared broadcast domain: any number of stations attach,
// and delivery filters on the destination MAC. Each station's transmitter
// paces its own frames (the model behaves like a full-duplex, non-
// colliding segment, which is also what the two-station private wire of
// the paper's lab was in practice). The segment also keeps the IP-to-MAC
// bindings the drivers resolve destinations through — the static ARP
// table of a closed testbed.
type Segment struct {
	stations []*Adapter
	byMAC    map[[6]byte]*Adapter
	byIP     map[uint32][6]byte

	// UnknownUnicasts counts frames whose destination MAC matched no
	// attached station; they are dropped, as a learning switch would
	// eventually do.
	UnknownUnicasts int64
}

// NewSegment returns an empty broadcast domain.
func NewSegment() *Segment {
	return &Segment{
		byMAC: make(map[[6]byte]*Adapter),
		byIP:  make(map[uint32][6]byte),
	}
}

// Reset clears the segment's counters for testbed reuse. The stations
// and IP bindings survive — they are the topology.
func (s *Segment) Reset() {
	s.UnknownUnicasts = 0
}

// Attach joins a station to the segment. Attaching two stations with the
// same MAC panics: delivery would be ambiguous.
func (s *Segment) Attach(a *Adapter) {
	if _, dup := s.byMAC[a.Addr]; dup {
		panic(fmt.Sprintf("ether: duplicate station address %x", a.Addr))
	}
	a.seg = s
	s.stations = append(s.stations, a)
	s.byMAC[a.Addr] = a
}

// BindIP records the station answering for an IP address, the segment's
// static ARP entry. Drivers use it to resolve the destination MAC for an
// outbound datagram.
func (s *Segment) BindIP(addr uint32, a *Adapter) { s.byIP[addr] = a.Addr }

// MACForIP resolves an IP address to the bound station MAC.
func (s *Segment) MACForIP(addr uint32) ([6]byte, bool) {
	mac, ok := s.byIP[addr]
	return mac, ok
}

// NumBindings returns the number of IP-to-MAC bindings installed.
func (s *Segment) NumBindings() int { return len(s.byIP) }

// NumStations returns the number of attached stations.
func (s *Segment) NumStations() int { return len(s.stations) }

// deliver routes one frame after its wire time: to the addressed station
// for unicast, to every other station for broadcast. Stations are walked
// in attach order, which keeps multi-station runs deterministic.
func (s *Segment) deliver(src *Adapter, f Frame) {
	var dst [6]byte
	copy(dst[:], f[0:6])
	if dst == Broadcast {
		for _, st := range s.stations {
			if st != src {
				st.receive(f)
			}
		}
		return
	}
	st, ok := s.byMAC[dst]
	if !ok || st == src {
		s.UnknownUnicasts++
		return
	}
	st.receive(f)
}

// Adapter models a LANCE on a 10 Mb/s segment: a transmit queue paced by
// the wire (with preamble and inter-frame gap) and enough receive
// buffering that frames are not dropped at the rates the experiments
// generate. It interrupts per received frame.
type Adapter struct {
	K    *kern.Kernel
	Addr [6]byte
	seg  *Segment

	wireBusy sim.Time
	rxQ      []rxItem
	// RxReady is the per-frame receive interrupt.
	RxReady *sim.WaitQueue

	// txPend holds frames committed to the transmitter and flight the
	// frames crossing the wire; frameOutFn/frameInFn are bound once so
	// Transmit schedules both wire events without allocating a closure
	// per frame (wire completion times are monotonic per adapter, so
	// FIFO order matches event order).
	txPend     []Frame
	flight     []Frame
	frameOutFn func()
	frameInFn  func()

	FramesSent int64
	FramesRecv int64
	// Filtered counts frames dropped by destination-address filtering.
	Filtered int64
	// LossRate drops frames on the wire for fault injection.
	LossRate float64
	// ge is the Gilbert–Elliott burst-loss chain (SetImpairments) —
	// the frame-level analogue of the ATM adapter's cell impairments,
	// drawing from a per-link RNG rather than the environment's stream.
	ge sim.GEChain
	// GEDrops counts frames the chain killed.
	GEDrops int64
	// down marks the station's drop cable failed (fault injection):
	// frames neither leave nor arrive until recovery. The disarmed cost
	// is one boolean test per frame on each path.
	down bool
	// DownDrops counts frames the down-state discarded (both directions).
	DownDrops int64
}

// SetImpairments configures the Gilbert–Elliott burst-loss chain on this
// adapter's receive side, seeded per link. A zero GEParams disables it,
// leaving the receive path byte-identical to an unimpaired adapter.
func (a *Adapter) SetImpairments(p sim.GEParams, seed uint64) {
	a.ge.Init(p, seed)
}

// NewAdapter returns an adapter with the given station address.
func NewAdapter(k *kern.Kernel, addr [6]byte) *Adapter {
	a := &Adapter{K: k, Addr: addr, RxReady: k.Env.NewWaitQueue(k.Name + ".le.rx")}
	a.frameOutFn = a.frameOut
	a.frameInFn = a.frameIn
	return a
}

// Reset returns the adapter to its just-constructed state for testbed
// reuse: the transmitter idle at time zero, queues emptied with their
// frame references released (frames are heap slices, unlike ATM's value
// cells), fault injection off, counters cleared. The RxReady wait queue
// survives with the driver's service process parked on it.
func (a *Adapter) Reset() {
	a.wireBusy = 0
	for i := range a.rxQ {
		a.rxQ[i] = rxItem{}
	}
	a.rxQ = a.rxQ[:0]
	for i := range a.txPend {
		a.txPend[i] = nil
	}
	a.txPend = a.txPend[:0]
	for i := range a.flight {
		a.flight[i] = nil
	}
	a.flight = a.flight[:0]
	a.LossRate = 0
	a.ge = sim.GEChain{}
	a.down = false
	a.FramesSent, a.FramesRecv, a.Filtered, a.GEDrops, a.DownDrops = 0, 0, 0, 0, 0
}

// SetDown flips the station's fault state: while down, frames the
// station transmits die on its drop cable and frames addressed to it are
// discarded on arrival.
func (a *Adapter) SetDown(down bool) { a.down = down }

// Down reports the station's fault state.
func (a *Adapter) Down() bool { return a.down }

// popFrame removes and returns the head of a frame queue, clearing the
// vacated slot so the array does not retain the frame.
func popFrame(q *[]Frame) Frame {
	f := (*q)[0]
	copy(*q, (*q)[1:])
	(*q)[len(*q)-1] = nil
	*q = (*q)[:len(*q)-1]
	return f
}

// frameOut fires when a frame's last bit leaves the wire: begin its
// propagation toward the segment.
func (a *Adapter) frameOut() {
	a.flight = append(a.flight, popFrame(&a.txPend))
	a.K.Env.After(a.K.Cost.EtherPropagation, "ether.framein", a.frameInFn)
}

// frameIn fires when the frame reaches the far end: hand it to the
// segment for destination filtering and delivery. A down station's
// frames die here — the pacing machinery (and so every wire timestamp)
// is untouched, only the delivery leg is lost.
func (a *Adapter) frameIn() {
	f := popFrame(&a.flight)
	if a.down {
		a.DownDrops++
		return
	}
	a.seg.deliver(a, f)
}

// Segment returns the broadcast domain the adapter is attached to, or nil.
func (a *Adapter) Segment() *Segment { return a.seg }

// Connect joins two adapters into a private two-station segment — the
// paper's lab configuration, kept as a thin constructor over Segment.
func Connect(a, b *Adapter) {
	s := NewSegment()
	s.Attach(a)
	s.Attach(b)
}

// rxItem is one received frame with its wire-arrival time.
type rxItem struct {
	f  Frame
	at sim.Time
}

// Transmit paces the frame onto the wire and hands it to the segment for
// destination filtering and delivery. It returns the time the frame's
// last bit leaves the wire — the packet trace's wire-departure instant.
func (a *Adapter) Transmit(f Frame) sim.Time {
	env := a.K.Env
	start := env.Now()
	if a.wireBusy > start {
		start = a.wireBusy
	}
	onWire := cost.WireTime(len(f)+PreambleBytes, a.K.Cost.EtherLinkBitsPS)
	end := start + onWire
	a.wireBusy = end + a.K.Cost.EtherIFG
	a.FramesSent++
	a.txPend = append(a.txPend, f)
	env.At(end, "ether.frameout", a.frameOutFn)
	return end
}

// receive handles a frame arriving from the wire. The station filter
// (own address or broadcast) mirrors the LANCE's hardware address match;
// the segment normally routes frames so the filter only fires on
// misdelivery.
func (a *Adapter) receive(f Frame) {
	if a.down {
		a.DownDrops++
		return
	}
	if len(f) >= 6 {
		var dst [6]byte
		copy(dst[:], f[0:6])
		if dst != a.Addr && dst != Broadcast {
			a.Filtered++
			return
		}
	}
	if a.ge.Enabled() && a.ge.Drop() {
		a.GEDrops++
		return
	}
	if a.LossRate > 0 && a.K.Env.RNG().Bool(a.LossRate) {
		return
	}
	a.FramesRecv++
	a.rxQ = append(a.rxQ, rxItem{f: f, at: a.K.Env.Now()})
	a.K.Trace.Mark(trace.MarkFrameArrival, a.K.Env.Now())
	a.RxReady.Wake()
}

// RxAvail returns the number of received frames waiting.
func (a *Adapter) RxAvail() int { return len(a.rxQ) }

// PopRx removes and returns the oldest waiting frame along with its
// wire-arrival time.
func (a *Adapter) PopRx() (Frame, sim.Time, bool) {
	if len(a.rxQ) == 0 {
		return nil, 0, false
	}
	it := a.rxQ[0]
	copy(a.rxQ, a.rxQ[1:])
	a.rxQ = a.rxQ[:len(a.rxQ)-1]
	return it.f, it.at, true
}

// Driver is the Ethernet network driver (ip.NetIf plus the receive
// interrupt service process).
type Driver struct {
	K       *kern.Kernel
	Adapter *Adapter
	IP      *ip.Stack

	// MTUOverride, when positive, lowers the MTU the driver advertises
	// to IP below the Ethernet payload limit.
	MTUOverride int

	// txBusy serializes Output (the splimp-protected driver section).
	txBusy bool
	txWait *sim.WaitQueue

	// lin is the transmit path's linearization scratch, reused across
	// Output calls under the txBusy serialization.
	lin []byte

	// outOp caches the transmit frame; txBusy serializes Output, so one
	// cached frame covers the steady state.
	outOp *outputOp

	FramesIn  int64
	FramesOut int64
	FCSErrors int64
	// NoRoute counts datagrams dropped because their IP destination
	// resolved to no station on a segment with ARP bindings.
	NoRoute int64
}

// NewDriver wires a driver to its adapter and IP stack and starts the
// receive service process.
func NewDriver(k *kern.Kernel, a *Adapter, ipStack *ip.Stack) *Driver {
	d := &Driver{K: k, Adapter: a, IP: ipStack}
	d.txWait = k.Env.NewWaitQueue(k.Name + ".le.txlock")
	ipStack.Attach(d)
	k.Env.Spawn(k.Name+".leintr", &rxprocFrame{d: d})
	return d
}

// Reset returns the driver to its just-constructed state for testbed
// reuse: the transmit lock clears, the MTU override returns to default
// for the lab to re-apply, and counters zero. The linearization scratch
// is retained; the receive service process stays parked on RxReady.
func (d *Driver) Reset() {
	d.MTUOverride = 0
	d.txBusy = false
	d.FramesIn, d.FramesOut, d.FCSErrors, d.NoRoute = 0, 0, 0, 0
}

// Name implements ip.NetIf.
func (d *Driver) Name() string { return d.K.Name + ".le0" }

// MTU implements ip.NetIf.
func (d *Driver) MTU() int {
	if d.MTUOverride > 0 && d.MTUOverride < MTU {
		return d.MTUOverride
	}
	return MTU
}

// Output implements ip.NetIf: encapsulate and hand to the adapter,
// charging the driver's per-frame output cost (the LANCE copy is part of
// the per-byte term). The destination MAC comes from the segment's ARP
// table, keyed by the datagram's IP destination. On a segment with no
// bindings at all (raw Connect pairs assembled without a topology
// builder) frames are flooded as broadcast, the old pairwise delivery;
// once bindings exist, a destination that resolves to none of them is a
// configuration error and the datagram is dropped and counted rather
// than flooded into every other host's stack.
func (d *Driver) Output(p *sim.Proc, m *mbuf.Mbuf) {
	f := d.outOp
	if f != nil {
		d.outOp = nil
	} else {
		f = &outputOp{d: d}
	}
	f.pc = 0
	f.m = m
	p.Call(f)
}

// outputOp is the frame behind Driver.Output: the transmit-lock wait, the
// linearize-and-charge step, the adapter hand-off, and the chain release.
type outputOp struct {
	d  *Driver
	pc int

	m       *mbuf.Mbuf
	txStart sim.Time
}

// Step drives the transmit state machine.
func (f *outputOp) Step(p *sim.Proc) {
	d := f.d
	k := d.K
	for {
		switch f.pc {
		case 0: // acquire the lock, linearize, charge the per-frame cost
			if d.txBusy {
				d.txWait.Wait(p)
				return
			}
			d.txBusy = true
			f.txStart = k.Now()
			data := mbuf.LinearizeInto(d.lin[:0], f.m)
			d.lin = data
			f.pc = 1
			if !k.Use(p, trace.LayerEtherTx, k.Cost.EtherTx.Cost(len(data))) {
				return
			}
		case 1: // hand to the adapter, then charge the chain free
			data := d.lin
			if dst, ok := d.resolve(data); ok {
				fr := Encapsulate(dst, d.Adapter.Addr, EtherTypeIPv4, data)
				wireEnd := d.Adapter.Transmit(fr)
				if k.Trace.PacketRecording() {
					id := k.PacketContext(p)
					k.Trace.Event(trace.Event{
						Kind: trace.EvDriverTx, At: f.txStart, Dur: k.Now() - f.txStart,
						ID: id, Len: len(data),
					})
					k.Trace.Event(trace.Event{
						Kind: trace.EvWireDepart, At: wireEnd, ID: id, Len: len(data),
					})
				}
				d.FramesOut++
			} else {
				d.NoRoute++
			}
			f.pc = 2
			if c := k.FreeChainCost(f.m); c > 0 {
				if !k.Use(p, trace.LayerMbuf, c) {
					return
				}
			}
		case 2: // release the chain and the lock
			if f.m != nil {
				k.Pool.Free(f.m)
				f.m = nil
			}
			d.txBusy = false
			d.txWait.WakeAll()
			if d.outOp == nil {
				d.outOp = f
			}
			p.Return()
			return
		}
	}
}

// resolve maps the datagram's IP destination to a station MAC.
func (d *Driver) resolve(dg []byte) ([6]byte, bool) {
	seg := d.Adapter.seg
	if seg == nil {
		return Broadcast, true
	}
	if mac, ok := seg.MACForIP(ip.Dst(dg)); ok {
		return mac, true
	}
	if seg.NumBindings() == 0 {
		return Broadcast, true
	}
	return [6]byte{}, false
}

// rxprocFrame is the receive interrupt service process: it drains
// received frames, validates the FCS, and — via its inlined deliver
// states — builds the mbuf chain (IP header mbuf + payload mbufs) and
// enqueues it for IP. IP trims Ethernet minimum-frame padding via the
// header's total length.
type rxprocFrame struct {
	d  *Driver
	pc int

	rxStart   sim.Time
	arrivedAt sim.Time
	dg        []byte
	etherType uint16
	ok        bool

	pktID       trace.PacketID
	tagged      bool
	rest        []byte
	chain, tail *mbuf.Mbuf
}

// Step drives the receive service loop.
func (f *rxprocFrame) Step(p *sim.Proc) {
	d := f.d
	k := d.K
	for {
		switch f.pc {
		case 0: // wait for a frame, pop it, charge the receive cost
			if d.Adapter.RxAvail() == 0 {
				d.Adapter.RxReady.Wait(p)
				return
			}
			f.rxStart = k.Now()
			fr, arrivedAt, _ := d.Adapter.PopRx()
			f.arrivedAt = arrivedAt
			f.dg, f.etherType, f.ok = Decapsulate(fr)
			f.pc = 1
			if !k.Use(p, trace.LayerEtherRx, k.Cost.EtherRx.Cost(len(f.dg))) {
				return
			}
		case 1: // validate; stamp the on-wire identity; charge header mbuf
			if !f.ok || f.etherType != EtherTypeIPv4 || len(f.dg) < ip.HeaderLen {
				d.FCSErrors++
				f.dg = nil
				f.pc = 0
				continue
			}
			// Untraced runs skip the tag push: it boxes the identity —
			// one heap allocation per frame on the hot path — and exists
			// only so trace events attribute to this packet.
			f.pktID, f.tagged = trace.PacketID{}, false
			if k.Trace.PacketsEnabled() {
				f.pktID = ip.PacketIDOf(f.dg)
				p.PushTag(f.pktID)
				f.tagged = true
				k.Trace.Event(trace.Event{
					Kind: trace.EvWireArrive, At: f.arrivedAt, ID: f.pktID, Len: len(f.dg),
				})
			}
			f.pc = 2
			if !k.Use(p, trace.LayerEtherRx, k.Cost.MbufAlloc) {
				return
			}
		case 2: // build the header mbuf; charge the first payload mbuf
			hm := k.Pool.Alloc()
			hm.Append(f.dg[:ip.HeaderLen])
			f.rest = f.dg[ip.HeaderLen:]
			f.chain, f.tail = hm, hm
			if len(f.rest) > 0 {
				f.pc = 3
				if !k.Use(p, trace.LayerEtherRx, f.payloadAllocCost()) {
					return
				}
			} else {
				f.pc = 4
			}
		case 3: // fill one payload mbuf; charge the next or finish
			var m *mbuf.Mbuf
			if len(f.dg) > mbuf.ClusterThreshold {
				m = k.Pool.AllocCluster()
			} else {
				m = k.Pool.Alloc()
			}
			n := m.Append(f.rest)
			f.rest = f.rest[n:]
			f.tail.SetNext(m)
			f.tail = m
			if len(f.rest) > 0 {
				f.pc = 3
				if !k.Use(p, trace.LayerEtherRx, f.payloadAllocCost()) {
					return
				}
			} else {
				f.pc = 4
			}
		case 4: // enqueue for IP and go back to the wait loop
			d.FramesIn++
			k.Trace.Event(trace.Event{
				Kind: trace.EvDriverRx, At: f.rxStart, Dur: k.Now() - f.rxStart,
				ID: f.pktID, Len: len(f.dg),
			})
			d.IP.Enqueue(f.chain)
			if f.tagged {
				p.PopTag()
				f.tagged = false
			}
			f.dg, f.rest, f.chain, f.tail = nil, nil, nil, nil
			f.pc = 0
		}
	}
}

// payloadAllocCost returns the charge for the next payload mbuf of the
// frame being delivered.
func (f *rxprocFrame) payloadAllocCost() sim.Time {
	if len(f.dg) > mbuf.ClusterThreshold {
		return f.d.K.Cost.ClusterAlloc
	}
	return f.d.K.Cost.MbufAlloc
}
