package mbuf

import (
	"bytes"
	"testing"
)

// fillPat writes a repeating pattern into an mbuf.
func fillPat(m *Mbuf, pat byte, n int) {
	b := make([]byte, n)
	for i := range b {
		b[i] = pat
	}
	if m.Append(b) != n {
		panic("fillPat: short append")
	}
}

// TestRecycledClusterNeverAliasesLiveReference is the pool-safety
// contract for cluster pages: freeing one reference to a shared page
// must NOT recycle it, so a subsequent allocation can never hand the
// same storage to a new writer while an in-flight segment (here, the
// retransmission copy a socket buffer holds) still reads it.
func TestRecycledClusterNeverAliasesLiveReference(t *testing.T) {
	var p Pool
	orig := p.AllocCluster()
	fillPat(orig, 0xAA, 100)

	// The reference-count copy TCP's mcopy makes for retransmission.
	dup, cs := p.Copy(orig, 0, 100)
	if cs.ClustersRef != 1 {
		t.Fatalf("expected a reference-count copy, got %+v", cs)
	}
	want := append([]byte(nil), dup.Bytes()...)

	// The driver frees the transmitted chain; dup's reference must keep
	// the page off the free-list.
	p.Free(orig)

	// A new allocation storms through and scribbles over everything the
	// pool hands out.
	for i := 0; i < 8; i++ {
		m := p.AllocCluster()
		fillPat(m, 0x55, MCLBYTES)
		if &m.data[0] == &dup.Bytes()[0] {
			t.Fatal("pool recycled a cluster page that is still referenced")
		}
		p.Free(m)
	}

	if !bytes.Equal(dup.Bytes(), want) {
		t.Fatal("live cluster reference was overwritten after recycling")
	}
	p.Free(dup)

	// With the last reference gone the page MUST recycle: the next
	// cluster allocation reuses it rather than growing the pool.
	reuses := p.PoolStats.PageReuses
	m := p.AllocCluster()
	if p.PoolStats.PageReuses != reuses+1 {
		t.Fatal("fully released cluster page was not recycled")
	}
	p.Free(m)
}

// TestRecycledHeaderNeverAliasesLiveChain proves a freed normal mbuf's
// storage cannot leak into a chain that was physically copied from it
// before the free.
func TestRecycledHeaderNeverAliasesLiveChain(t *testing.T) {
	var p Pool
	orig := p.Alloc()
	fillPat(orig, 0xAA, MLEN)
	dup, cs := p.Copy(orig, 0, MLEN) // normal mbufs copy physically
	if cs.BytesCopied != MLEN {
		t.Fatalf("expected a physical copy, got %+v", cs)
	}
	p.Free(orig)

	// The recycled header (orig's own storage) goes to the next Alloc.
	m := p.Alloc()
	fillPat(m, 0x55, MLEN)
	if &m.Bytes()[0] == &dup.Bytes()[0] {
		t.Fatal("recycled header aliases the live copy")
	}
	for _, b := range dup.Bytes() {
		if b != 0xAA {
			t.Fatal("live chain corrupted by header recycling")
		}
	}
}

// TestPoolRecyclesHeaders asserts the free-list actually engages: a
// steady alloc/free cycle must stop taking headers from the Go heap.
func TestPoolRecyclesHeaders(t *testing.T) {
	var p Pool
	m := p.Alloc()
	p.Free(m)
	news := p.PoolStats.HeaderNews
	for i := 0; i < 100; i++ {
		m := p.Alloc()
		p.Free(m)
	}
	if p.PoolStats.HeaderNews != news {
		t.Fatalf("steady alloc/free cycle grew the pool: %d new headers",
			p.PoolStats.HeaderNews-news)
	}
	if p.PoolStats.HeaderReuses < 100 {
		t.Fatalf("HeaderReuses = %d, want >= 100", p.PoolStats.HeaderReuses)
	}
}

// TestPoolAllocationFreeSteadyState pins the wall-clock contract at the
// pool level: once warm, the alloc/copy/free cycle of a typical segment
// (header mbuf + cluster + reference-count copy) performs zero Go heap
// allocations.
func TestPoolAllocationFreeSteadyState(t *testing.T) {
	var p Pool
	payload := make([]byte, 1400)
	cycle := func() {
		hm := p.Alloc()
		hm.Append(payload[:20])
		cl := p.AllocCluster()
		cl.Append(payload)
		hm.SetNext(cl)
		dup, _ := p.Copy(hm, 0, 1420)
		p.Free(dup)
		p.Free(hm)
	}
	cycle() // warm the free-lists
	if n := testing.AllocsPerRun(50, cycle); n != 0 {
		t.Fatalf("steady-state segment cycle allocates %.1f times per run, want 0", n)
	}
}
