// Package mbuf implements BSD-style network memory buffers with the exact
// semantics the paper's §2.2.1 identifies as the cause of the nonlinear
// latency response between the 500- and 1400-byte transfer sizes:
//
//   - Normal mbufs hold up to 108 bytes of data. Copying them (m_copy)
//     allocates fresh mbufs and copies the bytes.
//   - Cluster mbufs hold up to 4096 bytes (one page). Copying them bumps a
//     reference count; no data moves.
//   - The ULTRIX 4.2A socket layer switches from normal mbufs to clusters
//     once a transfer exceeds 1 KB.
//
// The package is pure data structure: it moves real bytes and counts real
// operations. CPU time is charged by the callers (socket layer, TCP, the
// drivers) using the operation counts in Stats/CopyStats, keeping the cost
// model in one place.
//
// # The free-list pool
//
// Pool recycles both mbuf headers and 4 KB cluster pages on free-lists,
// so steady-state traffic — where every segment allocates a handful of
// mbufs and frees them a round trip later — runs without touching the Go
// heap (see docs/PERFORMANCE.md for the measured effect). The lifecycle:
//
//   - Alloc/AllocLeading/AllocCluster pop a recycled header (and, for
//     clusters, a recycled page) when one is available and fall back to
//     the Go allocator only to grow the pool's high-water mark.
//   - Free pushes every header of the chain back onto the free-list; a
//     cluster page follows when its reference count reaches zero.
//   - A recycled header's data region is NOT zeroed: every caller in
//     this stack writes before it reads (Append, Prepend, Marshal), and
//     the reuse-aliasing tests in mbuf_test.go prove a recycled buffer
//     never aliases bytes still reachable through a live chain.
//
// None of this is visible to the simulation: Stats still counts every
// simulated allocator operation (the paper's mbuf-bookkeeping costs are
// charged from those counts), whether or not the pool satisfied it from
// a free-list. Recycling affects host wall-clock time only — the same
// "no simulated-time impact" contract the trace engine follows.
//
// Double frees corrupt free-lists, so Free panics if it sees a header
// that is already pooled.
package mbuf

import "repro/internal/checksum"

const (
	// MLEN is the data capacity of a normal mbuf. ULTRIX 4.2A mbufs
	// held 108 bytes of data (the paper states this directly).
	MLEN = 108
	// MCLBYTES is the data capacity of a cluster mbuf: one 4 KB page.
	MCLBYTES = 4096
	// ClusterThreshold is the transfer size above which the socket layer
	// switches to cluster mbufs (§2.2.1: "above 1 KB").
	ClusterThreshold = 1024
)

// cluster is the shared page behind one or more cluster mbufs.
type cluster struct {
	buf      []byte
	refs     int
	nextFree *cluster // free-list link while the page is pooled
}

// Mbuf is one buffer in a chain. Data occupies data[off:off+length].
type Mbuf struct {
	data   []byte
	off    int
	length int
	clust  *cluster // non-nil for cluster mbufs
	next   *Mbuf

	// Csum holds the partial checksum computed when data was copied into
	// this mbuf by the integrated copy-and-checksum socket layer
	// (§4.1.1: "store the partial checksum in the mbuf header").
	// CsumValid says whether it is usable; it becomes invalid if the
	// mbuf is split across segments.
	Csum      checksum.Partial
	CsumValid bool

	// pooled marks a header sitting on the free-list, to catch double
	// frees before they corrupt the list.
	pooled bool

	// buf is the header's own MLEN bytes of storage. Normal mbufs point
	// data at it; cluster mbufs point data at the shared page instead.
	// Embedding it means one recycled header serves either role.
	buf [MLEN]byte
}

// IsCluster reports whether the mbuf's storage is a shared cluster page.
func (m *Mbuf) IsCluster() bool { return m.clust != nil }

// Len returns the number of data bytes in this single mbuf.
func (m *Mbuf) Len() int { return m.length }

// Next returns the next mbuf in the chain, or nil.
func (m *Mbuf) Next() *Mbuf { return m.next }

// SetNext links n after m.
func (m *Mbuf) SetNext(n *Mbuf) { m.next = n }

// Bytes returns the mbuf's data as a slice of the underlying storage.
// Callers must not retain it across Free.
func (m *Mbuf) Bytes() []byte { return m.data[m.off : m.off+m.length] }

// Cap returns the remaining space after the data.
func (m *Mbuf) Cap() int { return len(m.data) - m.off - m.length }

// LeadingSpace returns the writable space before the data, available for
// prepending protocol headers.
func (m *Mbuf) LeadingSpace() int { return m.off }

// Append copies as much of b as fits into the mbuf's trailing space and
// returns the number of bytes consumed.
func (m *Mbuf) Append(b []byte) int {
	n := copy(m.data[m.off+m.length:], b)
	m.length += n
	return n
}

// Prepend extends the data region n bytes backwards and returns the slice
// for the caller to fill. It panics if there is not enough leading space;
// protocol code must check LeadingSpace or use Pool.PrependHeader.
func (m *Mbuf) Prepend(n int) []byte {
	if m.off < n {
		panic("mbuf: not enough leading space")
	}
	m.off -= n
	m.length += n
	return m.data[m.off : m.off+n]
}

// TrimHead removes n bytes from the front of this single mbuf.
func (m *Mbuf) TrimHead(n int) {
	if n > m.length {
		panic("mbuf: TrimHead beyond length")
	}
	m.off += n
	m.length -= n
}

// TrimTail removes n bytes from the end of this single mbuf.
func (m *Mbuf) TrimTail(n int) {
	if n > m.length {
		panic("mbuf: TrimTail beyond length")
	}
	m.length -= n
}

// Stats counts allocator and copy activity so callers can charge the cost
// model and so tests can assert on buffer management behaviour. The
// counts are SIMULATED allocator operations: a Pool free-list hit still
// counts as an alloc, because the modeled ULTRIX kernel still paid for
// one. PoolStats separates the host-side recycling.
type Stats struct {
	MbufAllocs    int64
	MbufFrees     int64
	ClusterAllocs int64
	ClusterFrees  int64
	ClusterRefs   int64 // reference-count copies (no data movement)
	BytesCopied   int64 // bytes physically copied by m_copy
}

// PoolStats counts the host-side free-list traffic, for the pool-safety
// tests and for verifying steady-state traffic recycles rather than
// allocates. LiveHeaders and LivePages are gauges, not counters: they
// track how many headers and cluster pages are currently out of the pool
// in live chains, and both must be zero between trials — a nonzero value
// after teardown means a chain leaked, the invariant the testbed-reuse
// leak gate asserts (lab.Config.CheckLeaks).
type PoolStats struct {
	HeaderReuses int64 // mbuf headers popped off the free-list
	HeaderNews   int64 // mbuf headers taken from the Go heap
	PageReuses   int64 // cluster pages popped off the free-list
	PageNews     int64 // cluster pages taken from the Go heap
	LiveHeaders  int64 // headers currently held by live chains
	LivePages    int64 // cluster pages currently held by live chains
}

// Pool allocates mbufs and tracks Stats. The zero value is ready to use.
// A Pool belongs to one simulated host and is not safe for concurrent
// use — the same discipline as every other per-kernel structure.
type Pool struct {
	Stats Stats
	// PoolStats counts free-list recycling (host-side, not simulated).
	PoolStats PoolStats

	freeHdr  *Mbuf    // recycled headers, linked through next
	freePage *cluster // recycled 4 KB pages, linked through nextFree
}

// get returns a blank header: recycled when possible, fresh otherwise.
func (p *Pool) get() *Mbuf {
	p.PoolStats.LiveHeaders++
	m := p.freeHdr
	if m == nil {
		p.PoolStats.HeaderNews++
		return &Mbuf{}
	}
	p.freeHdr = m.next
	p.PoolStats.HeaderReuses++
	m.next = nil
	m.pooled = false
	return m
}

// getPage returns a 4 KB cluster page with refs set to 1.
func (p *Pool) getPage() *cluster {
	p.PoolStats.LivePages++
	c := p.freePage
	if c == nil {
		p.PoolStats.PageNews++
		return &cluster{buf: make([]byte, MCLBYTES), refs: 1}
	}
	p.freePage = c.nextFree
	p.PoolStats.PageReuses++
	c.nextFree = nil
	c.refs = 1
	return c
}

// Reset clears the pool's counters for a new trial while RETAINING the
// free-lists — the whole point of reusing a testbed is that the next
// trial's steady-state traffic recycles this trial's headers and pages
// instead of growing the Go heap again. The live gauges are preserved:
// they describe chains still outstanding, which a reset cannot make
// disappear (the leak gate checks them before the reset).
func (p *Pool) Reset() {
	live := PoolStats{
		LiveHeaders: p.PoolStats.LiveHeaders,
		LivePages:   p.PoolStats.LivePages,
	}
	p.Stats = Stats{}
	p.PoolStats = live
}

// Alloc returns a normal mbuf with leading space for protocol headers.
func (p *Pool) Alloc() *Mbuf {
	return p.AllocLeading(0)
}

// AllocLeading returns a normal mbuf whose data begins at offset lead,
// leaving lead bytes of space for headers to be prepended.
func (p *Pool) AllocLeading(lead int) *Mbuf {
	if lead > MLEN {
		panic("mbuf: leading space exceeds MLEN")
	}
	p.Stats.MbufAllocs++
	m := p.get()
	m.data = m.buf[:]
	m.off = lead
	m.length = 0
	m.clust = nil
	m.Csum = checksum.Partial{}
	m.CsumValid = false
	return m
}

// AllocCluster returns a cluster mbuf backed by a 4 KB page.
func (p *Pool) AllocCluster() *Mbuf {
	p.Stats.MbufAllocs++
	p.Stats.ClusterAllocs++
	c := p.getPage()
	m := p.get()
	m.data = c.buf
	m.off = 0
	m.length = 0
	m.clust = c
	m.Csum = checksum.Partial{}
	m.CsumValid = false
	return m
}

// Free releases an entire chain onto the free-lists, decrementing cluster
// reference counts; a cluster page is recycled only when its last
// reference drops. Freeing an already-pooled header panics.
func (p *Pool) Free(m *Mbuf) {
	for m != nil {
		if m.pooled {
			panic("mbuf: double free")
		}
		next := m.next
		p.Stats.MbufFrees++
		p.PoolStats.LiveHeaders--
		if m.clust != nil {
			m.clust.refs--
			if m.clust.refs == 0 {
				p.Stats.ClusterFrees++
				p.PoolStats.LivePages--
				m.clust.nextFree = p.freePage
				p.freePage = m.clust
			}
			if m.clust.refs < 0 {
				panic("mbuf: cluster refcount underflow")
			}
			m.clust = nil
		}
		m.data = nil
		m.length = 0
		m.CsumValid = false
		m.pooled = true
		m.next = p.freeHdr
		p.freeHdr = m
		m = next
	}
}

// CopyStats reports what a Copy physically did, so the caller can charge
// the two very different cost curves (§2.2.1).
type CopyStats struct {
	MbufsAllocated int // fresh mbufs that required allocation
	ClustersRef    int // cluster copies done by reference count
	BytesCopied    int // bytes physically moved
}

// Copy returns a new chain referring to bytes [off, off+n) of the chain m,
// with BSD m_copy semantics: normal mbuf data is physically copied into
// freshly allocated mbufs; cluster mbuf data is shared by bumping the
// cluster reference count. This difference is why the paper's mcopy row
// drops when transfers exceed 1 KB.
func (p *Pool) Copy(m *Mbuf, off, n int) (*Mbuf, CopyStats) {
	var cs CopyStats
	if n == 0 {
		return nil, cs
	}
	// Skip to the starting mbuf.
	for m != nil && off >= m.length {
		off -= m.length
		m = m.next
	}
	var head, tail *Mbuf
	appendM := func(nm *Mbuf) {
		if head == nil {
			head = nm
		} else {
			tail.next = nm
		}
		tail = nm
	}
	for n > 0 {
		if m == nil {
			panic("mbuf: Copy past end of chain")
		}
		take := m.length - off
		if take > n {
			take = n
		}
		if m.clust != nil {
			// Reference-count copy: share the cluster page.
			m.clust.refs++
			p.Stats.MbufAllocs++ // the mbuf header itself is allocated
			p.Stats.ClusterRefs++
			cs.MbufsAllocated++
			cs.ClustersRef++
			nm := p.get()
			nm.data, nm.off, nm.length, nm.clust = m.data, m.off+off, take, m.clust
			nm.Csum, nm.CsumValid = m.Csum, m.CsumValid && off == 0 && take == m.length
			appendM(nm)
		} else {
			// Physical copy into fresh normal mbufs.
			src := m.data[m.off+off : m.off+off+take]
			for len(src) > 0 {
				nm := p.Alloc()
				cs.MbufsAllocated++
				w := nm.Append(src)
				cs.BytesCopied += w
				p.Stats.BytesCopied += int64(w)
				src = src[w:]
				appendM(nm)
			}
			if off == 0 && take == m.length && head != nil {
				// Partial checksum survives only a whole-mbuf copy
				// into a single destination mbuf.
				if take <= MLEN {
					tail.Csum, tail.CsumValid = m.Csum, m.CsumValid
				}
			}
		}
		n -= take
		off = 0
		m = m.next
	}
	return head, cs
}

// PrependHeader returns the chain with n bytes of header space available at
// the front, allocating a new leading mbuf if the first mbuf lacks leading
// space (the common case, mirroring M_PREPEND). The returned slice is the
// header region to fill; allocated reports whether a new mbuf was needed.
func (p *Pool) PrependHeader(m *Mbuf, n int) (head *Mbuf, hdr []byte, allocated bool) {
	if n > MLEN {
		panic("mbuf: header larger than MLEN")
	}
	if m != nil && m.LeadingSpace() >= n {
		return m, m.Prepend(n), false
	}
	nm := p.AllocLeading(MLEN)
	nm.off = MLEN - n
	nm.length = n
	nm.next = m
	return nm, nm.data[nm.off : nm.off+n], true
}

// ChainLen returns the total data bytes in the chain.
func ChainLen(m *Mbuf) int {
	n := 0
	for ; m != nil; m = m.next {
		n += m.length
	}
	return n
}

// ChainCount returns the number of mbufs in the chain.
func ChainCount(m *Mbuf) int {
	c := 0
	for ; m != nil; m = m.next {
		c++
	}
	return c
}

// Linearize copies the chain's data into a single new byte slice.
func Linearize(m *Mbuf) []byte {
	return LinearizeInto(nil, m)
}

// LinearizeInto appends the chain's data to dst and returns the extended
// slice, allowing callers on the per-packet path (the drivers) to reuse
// one scratch buffer across datagrams instead of allocating per call.
func LinearizeInto(dst []byte, m *Mbuf) []byte {
	if dst == nil {
		dst = make([]byte, 0, ChainLen(m))
	}
	for ; m != nil; m = m.next {
		dst = append(dst, m.Bytes()...)
	}
	return dst
}

// CopyBytesTo copies n bytes starting at offset off in the chain into dst,
// returning the number of bytes copied (less than n only if the chain is
// shorter than off+n).
func CopyBytesTo(m *Mbuf, off, n int, dst []byte) int {
	for m != nil && off >= m.length {
		off -= m.length
		m = m.next
	}
	copied := 0
	for m != nil && copied < n {
		take := m.length - off
		if take > n-copied {
			take = n - copied
		}
		copy(dst[copied:], m.data[m.off+off:m.off+off+take])
		copied += take
		off = 0
		m = m.next
	}
	return copied
}

// Drop removes n bytes from the front of the chain, freeing any mbufs
// emptied in the process, and returns the new head (nil if the whole chain
// was consumed). It is how protocol layers strip headers they have parsed.
func (p *Pool) Drop(m *Mbuf, n int) *Mbuf {
	for m != nil && n > 0 {
		if n < m.length {
			m.TrimHead(n)
			m.CsumValid = false
			return m
		}
		n -= m.length
		next := m.next
		m.next = nil
		p.Free(m)
		m = next
	}
	if n > 0 {
		panic("mbuf: Drop past end of chain")
	}
	return m
}

// Concat appends chain b after chain a and returns the head.
func Concat(a, b *Mbuf) *Mbuf {
	if a == nil {
		return b
	}
	t := a
	for t.next != nil {
		t = t.next
	}
	t.next = b
	return a
}

// Split cuts the chain after n bytes and returns the two halves. The split
// point may fall inside an mbuf; cluster storage is shared between halves
// (reference counted), normal mbuf bytes are copied for the second half.
func (p *Pool) Split(m *Mbuf, n int) (front, back *Mbuf) {
	if n <= 0 {
		return nil, m
	}
	if n >= ChainLen(m) {
		return m, nil
	}
	cur := m
	remain := n
	var prev *Mbuf
	for remain >= cur.length {
		remain -= cur.length
		prev = cur
		cur = cur.next
	}
	if remain == 0 {
		prev.next = nil
		return m, cur
	}
	// The split is inside cur: make back start with the tail of cur.
	var tailM *Mbuf
	if cur.clust != nil {
		cur.clust.refs++
		p.Stats.MbufAllocs++
		p.Stats.ClusterRefs++
		tailM = p.get()
		tailM.data, tailM.off, tailM.length, tailM.clust =
			cur.data, cur.off+remain, cur.length-remain, cur.clust
		tailM.Csum, tailM.CsumValid = checksum.Partial{}, false
	} else {
		tailM = p.Alloc()
		w := tailM.Append(cur.data[cur.off+remain : cur.off+cur.length])
		p.Stats.BytesCopied += int64(w)
	}
	tailM.next = cur.next
	cur.length = remain
	cur.next = nil
	cur.CsumValid = false
	return m, tailM
}
