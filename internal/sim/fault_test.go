package sim

import (
	"math"
	"testing"
)

// TestGEStationaryLoss runs the chain long enough for the empirical
// loss rate to converge and compares it against the closed-form
// stationary loss — the property RunLossStudy-style comparisons lean
// on when they quote a GE configuration as "x% effective loss".
func TestGEStationaryLoss(t *testing.T) {
	p := GEParams{PGoodBad: 0.01, PBadGood: 0.1, LossGood: 0.001, LossBad: 0.5}
	var c GEChain
	c.Init(p, 1234)
	const n = 2_000_000
	lost := 0
	for i := 0; i < n; i++ {
		if c.Drop() {
			lost++
		}
	}
	want := p.StationaryLoss()
	got := float64(lost) / n
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("empirical loss %.5f, stationary %.5f (>5%% off)", got, want)
	}
}

// TestGEMeanBurst measures the mean Bad-state sojourn and compares it
// against the geometric mean 1/PBadGood — the "burst length" knob the
// loaded-network configurations are documented in terms of.
func TestGEMeanBurst(t *testing.T) {
	p := GEParams{PGoodBad: 0.02, PBadGood: 0.1, LossBad: 1}
	var c GEChain
	c.Init(p, 77)
	const n = 2_000_000
	bursts, badUnits := 0, 0
	inBad := false
	for i := 0; i < n; i++ {
		c.Drop()
		if c.Bad() {
			if !inBad {
				bursts++
			}
			badUnits++
		}
		inBad = c.Bad()
	}
	if bursts == 0 {
		t.Fatal("chain never entered the Bad state")
	}
	got := float64(badUnits) / float64(bursts)
	want := 1 / p.PBadGood
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("mean burst %.3f units over %d bursts, want %.3f (>5%% off)", got, bursts, want)
	}
}

// TestGEDeterminism requires the chain to be a pure function of its
// seed: identical seeds replay identical drop sequences, Reset rewinds
// exactly, and a different seed decorrelates.
func TestGEDeterminism(t *testing.T) {
	p := GEParams{PGoodBad: 0.05, PBadGood: 0.2, LossBad: 0.7}
	seq := func(c *GEChain, n int) string {
		out := make([]byte, n)
		for i := range out {
			if c.Drop() {
				out[i] = '1'
			} else {
				out[i] = '0'
			}
		}
		return string(out)
	}
	var a, b GEChain
	a.Init(p, 5)
	b.Init(p, 5)
	sa := seq(&a, 10000)
	if sb := seq(&b, 10000); sb != sa {
		t.Error("identically seeded chains diverged")
	}
	a.Reset()
	if got := seq(&a, 10000); got != sa {
		t.Error("Reset did not replay the chain")
	}
	var d GEChain
	d.Init(p, 6)
	if seq(&d, 10000) == sa {
		t.Error("differently seeded chains correlated")
	}
}

// TestGEDisabled pins the zero value and the loss-only edge cases of
// Enabled and StationaryLoss.
func TestGEDisabled(t *testing.T) {
	var zero GEParams
	if zero.Enabled() {
		t.Error("zero GEParams enabled")
	}
	if zero.StationaryLoss() != 0 {
		t.Errorf("zero StationaryLoss %g", zero.StationaryLoss())
	}
	// A chain that never transitions but loses in Good state is a plain
	// Bernoulli dropper.
	bern := GEParams{LossGood: 0.25}
	if !bern.Enabled() {
		t.Error("Bernoulli-style GEParams not enabled")
	}
	if got := bern.StationaryLoss(); got != 0.25 {
		t.Errorf("Bernoulli StationaryLoss %g, want 0.25", got)
	}
	var c GEChain
	c.Init(GEParams{}, 9)
	for i := 0; i < 1000; i++ {
		if c.Drop() {
			t.Fatal("disabled chain dropped a unit")
		}
	}
}
