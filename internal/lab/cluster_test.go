package lab

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/sim"
)

// mustCluster builds a cluster or fails the test.
func mustCluster(t *testing.T, cfg Config, nHosts, shards int) *Cluster {
	t.Helper()
	c, err := NewCluster(cfg, nHosts, shards)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// clusterEcho runs the echo benchmark on a cluster and returns the
// result; any error fails the test.
func clusterEcho(t *testing.T, c *Cluster, size int) *EchoResult {
	t.Helper()
	res, err := c.RunEcho(size, 12, 2)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestClusterGates pins the configurations sharded execution refuses:
// everything whose serial behavior consumes a shared RNG stream or
// mutates peer-host state directly, which per-shard loops cannot
// replicate bit-identically.
func TestClusterGates(t *testing.T) {
	bad := []Config{
		{Link: LinkEther},
		{Link: LinkATM, CellLossRate: 0.01},
		{Link: LinkATM, CellCorruptRate: 0.01},
		{Link: LinkATM, HostCorruptRate: 0.01},
		{Link: LinkATM, ExtraPCBs: 5},
		{Link: LinkATM, LivePCBs: 5},
	}
	for i, cfg := range bad {
		if _, err := NewCluster(cfg, 4, 2); err == nil {
			t.Errorf("case %d: NewCluster accepted gated config %+v", i, cfg)
		}
	}
	if _, err := NewCluster(Config{Link: LinkATM}, 4, 0); err == nil {
		t.Error("NewCluster accepted 0 shards")
	}
}

// TestClusterClamps pins the degenerate shapes: a two-host lab is
// switchless (one unit — nothing to cut), and the shard count clamps to
// the number of partition units.
func TestClusterClamps(t *testing.T) {
	if c := mustCluster(t, Config{Link: LinkATM}, 2, 8); c.NumShards() != 1 {
		t.Errorf("2-host cluster has %d shards, want 1", c.NumShards())
	}
	// 5 hosts on a hub = 5 units; requesting more shards clamps.
	if c := mustCluster(t, Config{Link: LinkATM}, 5, 64); c.NumShards() != 5 {
		t.Errorf("5-host hub cluster has %d shards, want clamp to 5", c.NumShards())
	}
	// Host 0 always lives alone on shard 0.
	c := mustCluster(t, Config{Link: LinkATM}, 5, 3)
	if got := c.HostShard(0); got != 0 {
		t.Errorf("host 0 on shard %d, want 0", got)
	}
	for i := 1; i < 5; i++ {
		if c.HostShard(i) == 0 {
			t.Errorf("client host %d shares shard 0 with the server", i)
		}
	}
}

// TestClusterEchoBitIdentity is the tentpole contract at the lab layer:
// the sharded echo benchmark reproduces the serial run exactly — every
// RTT, every kernel window, every traced packet event.
func TestClusterEchoBitIdentity(t *testing.T) {
	cfg := Config{Link: LinkATM, PacketTrace: true, Seed: 1994}
	serialLab := NewTopology(cfg, 3)
	serial := runEchoOn(t, serialLab, 1400)
	serialEvents := serialLab.PacketEvents()

	for _, shards := range []int{2, 3} {
		c := mustCluster(t, cfg, 3, shards)
		if c.NumShards() < 2 {
			t.Fatalf("shards=%d degenerated to serial", shards)
		}
		got := clusterEcho(t, c, 1400)
		if !reflect.DeepEqual(got, serial) {
			t.Errorf("shards=%d: echo result diverged from serial", shards)
		}
		if ev := c.Lab.PacketEvents(); !reflect.DeepEqual(ev, serialEvents) {
			t.Errorf("shards=%d: packet events diverged from serial (%d vs %d events)",
				shards, len(ev), len(serialEvents))
		}
	}
}

// TestClusterResetBitIdentity is the sharded testbed-reuse contract: a
// cluster warmed on a different trial and Reset to a new configuration
// must reproduce a freshly built cluster byte-for-byte — same RTTs, same
// trace — just like lab.Lab.Reset pins for serial labs.
func TestClusterResetBitIdentity(t *testing.T) {
	warmCfg := Config{Link: LinkATM, PacketTrace: true, SockBuf: 4096, Seed: 3}
	cfg := Config{Link: LinkATM, PacketTrace: true, Seed: 7}

	fresh := clusterEcho(t, mustCluster(t, cfg, 4, 3), 1400)

	c := mustCluster(t, warmCfg, 4, 3)
	clusterEcho(t, c, 200)
	if err := c.Reset(cfg, 0); err != nil {
		t.Fatalf("Cluster.Reset: %v", err)
	}
	reused := clusterEcho(t, c, 1400)
	if !reflect.DeepEqual(reused, fresh) {
		t.Error("reused cluster diverged from fresh cluster")
	}
}

// TestLabResetRejectsShardedOwner pins the guard against resetting one
// shard of a sharded testbed as if it were a whole serial lab: shard 0's
// Lab must refuse, directing callers through Cluster.Reset.
func TestLabResetRejectsShardedOwner(t *testing.T) {
	c := mustCluster(t, Config{Link: LinkATM, Seed: 5}, 4, 2)
	clusterEcho(t, c, 200)
	if err := c.Lab.Reset(Config{Link: LinkATM, Seed: 9}, 0); err == nil {
		t.Fatal("Lab.Reset accepted a lab owned by a 2-shard cluster")
	}
	if err := c.Reset(Config{Link: LinkATM, Seed: 9}, 0); err != nil {
		t.Fatalf("Cluster.Reset rejected a matching shape: %v", err)
	}
	// A single-shard cluster's lab is an ordinary serial lab; the guard
	// must not apply.
	c1 := mustCluster(t, Config{Link: LinkATM, Seed: 5}, 2, 1)
	clusterEcho(t, c1, 200)
	if err := c1.Lab.Reset(Config{Link: LinkATM, Seed: 9}, 0); err != nil {
		t.Fatalf("Lab.Reset rejected a single-shard cluster's lab: %v", err)
	}
}

// TestClusterGoroutineFootprint pins worker cost at O(shards): a run
// holds one goroutine per shard while shards execute and releases them
// all before Run returns — no per-host or per-connection goroutines, and
// no leak across runs.
func TestClusterGoroutineFootprint(t *testing.T) {
	before := runtime.NumGoroutine()
	c := mustCluster(t, Config{Link: LinkATM, Seed: 1}, 9, 4)
	during := 0
	// Sample mid-run from inside a shard's event loop. The extra event is
	// simulation-inert (it only reads the goroutine count).
	c.Shards[1].Env.At(sim.Millisecond, "sample", func() {
		during = runtime.NumGoroutine()
	})
	clusterEcho(t, c, 1400)
	// Run has returned but the released workers may still be tearing
	// down; give the scheduler a moment before calling a leak.
	after := runtime.NumGoroutine()
	for i := 0; i < 100 && after > before+2; i++ {
		time.Sleep(time.Millisecond)
		after = runtime.NumGoroutine()
	}

	if during == 0 {
		t.Fatal("mid-run sample never fired")
	}
	if during > before+c.NumShards()+2 {
		t.Errorf("goroutines during run: %d, want <= %d (before %d + %d shards + 2)",
			during, before+c.NumShards()+2, before, c.NumShards())
	}
	if after > before+2 {
		t.Errorf("goroutines after run: %d, want <= %d — workers leaked", after, before+2)
	}
}
