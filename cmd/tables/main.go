// Command tables regenerates every table and figure in the paper's
// evaluation — Tables 1 through 7, the §3 PCB study, Figures 1 and 2,
// and the beyond-paper extension sweep — with published values alongside
// measured ones, and optionally writes the result to a file.
//
// The independent trials behind each table shard across a worker pool;
// -parallel sets the pool size (0 = GOMAXPROCS, 1 = serial) and the
// results are bit-identical at any setting. -seed derives per-trial RNG
// seeds from the given base; -json emits the full report as JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("tables", flag.ContinueOnError)
	var (
		iters    = fs.Int("iters", 100, "measured iterations per configuration")
		out      = fs.String("o", "", "also write the report to this file")
		figures  = fs.Bool("figures", true, "render ASCII figures 1 and 2")
		parallel = fs.Int("parallel", 0, "sweep workers (0 = GOMAXPROCS, 1 = serial)")
		seed     = fs.Uint64("seed", 0, "base seed for per-trial RNG derivation (0 = defaults)")
		jsonOut  = fs.Bool("json", false, "emit the report as JSON instead of text")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return err
	}

	opts := core.Options{
		Iterations: *iters,
		Warmup:     8,
		Parallel:   *parallel,
		BaseSeed:   *seed,
	}
	rep, err := core.RunAll(opts)
	if err != nil {
		return err
	}

	var text string
	if *jsonOut {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		text = string(b) + "\n"
	} else {
		text = rep.Render()
		if *figures {
			text += "\n" + core.RenderFigure1(rep.Table4) + "\n" + core.RenderFigure2(rep.Table5)
		}
	}
	fmt.Fprint(w, text)
	if *out != "" {
		if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
			return err
		}
	}
	return nil
}
