package main

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

const sampleDoc = "# Title\n" +
	"Inline: `go run ./cmd/tcplat -sweep` and also `go run ./cmd/cksum`.\n" +
	"Not a command: `-link ether` or `make tables`.\n" +
	"```sh\n" +
	"go run ./cmd/tables -iters 100 -parallel 8   # full report\n" +
	"go run ./cmd/load -workload fanin -hosts 17 -json > /dev/null\n" +
	"make test\n" +
	"```\n" +
	"```go\n" +
	"fmt.Println(\"go run ./cmd/fake\") // prose, but starts mid-line so skipped\n" +
	"```\n" +
	"And `go run ./cmd/docscheck -list` must never recurse.\n"

func TestExtractCommands(t *testing.T) {
	got := extractCommands(sampleDoc)
	want := []string{
		"go run ./cmd/tcplat -sweep",
		"go run ./cmd/cksum",
		"go run ./cmd/tables -iters 100 -parallel 8",
		"go run ./cmd/load -workload fanin -hosts 17 -json > /dev/null",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("extractCommands:\n got %q\nwant %q", got, want)
	}
}

func TestCommandArgsSmokeAndRedirects(t *testing.T) {
	got := commandArgs("go run ./cmd/tables -iters 100 -parallel 8", true)
	want := []string{"go", "run", "./cmd/tables", "-iters", "100", "-parallel", "8",
		"-iters", "2", "-parallel", "2"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("smoke args = %q, want %q", got, want)
	}
	got = commandArgs("go run ./cmd/load -json > /dev/null", true)
	want = []string{"go", "run", "./cmd/load", "-json", "-reqs", "2", "-conns", "2"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("redirect args = %q, want %q", got, want)
	}
	// No smoke entry: command passes through minus redirections.
	got = commandArgs("go run ./examples/sweep | head", false)
	want = []string{"go", "run", "./examples/sweep"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("pipe args = %q, want %q", got, want)
	}
}

func TestListModeAgainstRepoDocs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "DOC.md")
	if err := os.WriteFile(path, []byte(sampleDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-list", path}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"go run ./cmd/tcplat -sweep -iters 2 -warmup 1",
		"go run ./cmd/tables -iters 100 -parallel 8 -iters 2 -parallel 2",
	} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if bytes.Contains([]byte(out), []byte("docscheck -list")) {
		t.Fatal("docscheck would recurse into itself")
	}
}

func TestNoCommandsIsAnError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "EMPTY.md")
	if err := os.WriteFile(path, []byte("nothing here\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-list", path}, &buf); err == nil {
		t.Fatal("empty doc set accepted")
	}
}
