// Sweep: the parallel experiment-sweep engine driving the beyond-paper
// grid — MTU × socket buffer × cell loss, dimensions the testbed
// supports but the paper holds fixed — with live progress and a summary
// table. The same grid runs serially first so the demo can verify the
// engine's core guarantee: per-cell seeds derive from grid position, so
// the parallel results are bit-identical to the serial ones.
//
// Run with: go run ./examples/sweep
package main

import (
	"context"
	"fmt"
	"log"
	"reflect"
	"runtime"

	"repro/internal/runner"
)

func main() {
	trials := runner.ExtendedGrid(40, 4).Trials()
	fmt.Printf("%d grid cells (MTU × socket buffer × loss × size), %d workers\n\n",
		len(trials), runtime.GOMAXPROCS(0))

	serial, err := runner.RunEchoSweep(context.Background(), trials,
		runner.Options{Workers: 1, BaseSeed: 1994})
	if err != nil {
		log.Fatal(err)
	}

	parallel, err := runner.RunEchoSweep(context.Background(), trials,
		runner.Options{
			BaseSeed: 1994,
			Progress: func(done, total int) {
				fmt.Printf("\r%d/%d cells", done, total)
			},
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	if !reflect.DeepEqual(serial, parallel) {
		log.Fatal("parallel sweep diverged from the serial reference")
	}
	fmt.Println("parallel results bit-identical to the serial reference")
	fmt.Println()
	fmt.Print(runner.RenderEchoOutcomes("Beyond-paper sweep (mean µs per cell)", parallel))
	fmt.Println("\nReading: a 1500-byte MTU forces ~6x the segments at 8000 bytes;")
	fmt.Println("a 4 KB socket buffer serializes large transfers behind window")
	fmt.Println("updates; cell loss adds retransmission stalls to the mean.")
}
