package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cost"
	"repro/internal/runner"
)

// Report holds every regenerated experiment.
type Report struct {
	Table1 *CompareResult
	Table2 *BreakdownResult
	Table3 *BreakdownResult
	Table4 *CompareResult
	Table5 *CksumResult
	Table6 *CompareResult
	Table7 *CompareResult
	PCB    *PCBResult
	// PCBLive is the §3 study measured against live connection
	// populations instead of synthetic inserts; its rows must match PCB
	// exactly.
	PCBLive   *PCBResult
	Sun3      Sun3Result
	Errors    *ErrorStudyResult
	Transport *TransportResult
	// FanIn is the fan-in/churn study: latency percentiles versus
	// client count and PCB organization on N-host topologies.
	FanIn *FanInResult
	// Extended is the beyond-paper sweep: MTU, socket-buffer, and
	// cell-loss dimensions the testbed supports but the paper holds
	// fixed.
	Extended []runner.EchoOutcome
}

// RunExtendedSweep runs the beyond-paper grid (runner.ExtendedGrid)
// through the sweep engine.
func RunExtendedSweep(o Options) ([]runner.EchoOutcome, error) {
	o = o.normalize()
	trials := runner.ExtendedGrid(o.Iterations, o.Warmup).Trials()
	outs, err := runner.RunEchoSweep(context.Background(), trials, o.runnerOpts())
	if err != nil {
		return nil, err
	}
	for _, out := range outs {
		if out.Error != "" {
			return nil, fmt.Errorf("cell %s: %s", out.Label, out.Error)
		}
	}
	return outs, nil
}

// RunAll regenerates every table and figure in the paper's evaluation.
func RunAll(o Options) (*Report, error) {
	o = o.normalize()
	r := &Report{}
	var err error
	if r.Table1, err = RunTable1(o); err != nil {
		return nil, fmt.Errorf("table 1: %w", err)
	}
	if r.Table2, err = RunTable2(o); err != nil {
		return nil, fmt.Errorf("table 2: %w", err)
	}
	if r.Table3, err = RunTable3(o); err != nil {
		return nil, fmt.Errorf("table 3: %w", err)
	}
	if r.Table4, err = RunTable4(o); err != nil {
		return nil, fmt.Errorf("table 4: %w", err)
	}
	if r.Table5, err = RunTable5(); err != nil {
		return nil, fmt.Errorf("table 5: %w", err)
	}
	if r.Table6, err = RunTable6(o); err != nil {
		return nil, fmt.Errorf("table 6: %w", err)
	}
	if r.Table7, err = RunTable7(o); err != nil {
		return nil, fmt.Errorf("table 7: %w", err)
	}
	r.PCB = RunPCBExperiment()
	r.PCBLive = RunPCBLiveExperiment()
	r.Sun3 = RunSun3Comparison()
	if r.Errors, err = RunErrorStudy(150, o); err != nil {
		return nil, fmt.Errorf("error study: %w", err)
	}
	if r.Transport, err = RunTransportComparison(cost.ChecksumStandard, o); err != nil {
		return nil, fmt.Errorf("transport comparison: %w", err)
	}
	if r.FanIn, err = RunFanInStudy(FanInClientCounts, 12, o); err != nil {
		return nil, fmt.Errorf("fan-in study: %w", err)
	}
	if r.Extended, err = RunExtendedSweep(o); err != nil {
		return nil, fmt.Errorf("extended sweep: %w", err)
	}
	return r, nil
}

// Render formats the full report.
func (r *Report) Render() string {
	var b strings.Builder
	sections := []string{
		r.Table1.Render(),
		r.Table2.Render(),
		r.Table3.Render(),
		r.Table4.Render(),
		r.PCB.Render(),
		r.PCBLive.Render(),
		r.Table5.Render(),
		r.Table6.Render(),
		r.Table7.Render(),
		r.Sun3.Render(),
		r.Errors.Render(),
		r.Transport.Render(),
		r.FanIn.Render(),
		runner.RenderEchoOutcomes(
			"Extension: beyond-paper sweep (MTU × socket buffer × cell loss)",
			r.Extended),
	}
	for _, s := range sections {
		b.WriteString(s)
		b.WriteString("\n")
	}
	return b.String()
}
