package core

import (
	"strings"
	"testing"

	"repro/internal/lab"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestRunLoadedStudy runs the loaded study small and checks both
// transports complete, attribution is populated, and the render carries
// the comparison.
func TestRunLoadedStudy(t *testing.T) {
	o := LoadedOptions{
		Hosts: 4, Requests: 3, Size: 200,
		Qdisc:      lab.QdiscConfig{Kind: lab.QdiscRED},
		CrossFlows: 1,
		Parallel:   1,
	}
	res, err := RunLoadedStudy(o)
	if err != nil {
		t.Fatalf("RunLoadedStudy: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(res.Rows))
	}
	for i, tr := range []string{workload.TransportTCP, workload.TransportRUDP} {
		row := res.Rows[i]
		if row.Transport != tr {
			t.Errorf("row %d transport %q, want %q", i, row.Transport, tr)
		}
		if want := 3 * 3; row.Requests != want {
			t.Errorf("%s: %d requests, want %d", tr, row.Requests, want)
		}
		if row.Errors != 0 {
			t.Errorf("%s: %d errors", tr, row.Errors)
		}
		if row.MeanMicros <= 0 || row.Quantiles.P99 < row.Quantiles.P50 {
			t.Errorf("%s: degenerate latency stats %+v", tr, row)
		}
		if len(row.ServerCPU) == 0 {
			t.Errorf("%s: empty server CPU attribution", tr)
		}
	}
	out := res.Render()
	for _, want := range []string{"loaded fan-in", "tcp", "rudp", "Server CPU attribution", "cross flows"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestRunLoadedStudyDeterministicAcrossWorkers pins the sweep property:
// the study is bit-identical at any parallelism.
func TestRunLoadedStudyDeterministicAcrossWorkers(t *testing.T) {
	o := LoadedOptions{
		Hosts: 4, Requests: 2,
		Qdisc:      lab.QdiscConfig{Kind: lab.QdiscRED},
		CrossFlows: 1,
		BaseSeed:   7,
	}
	run := func(workers int) string {
		o := o
		o.Parallel = workers
		res, err := RunLoadedStudy(o)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res.Render()
	}
	serial := run(1)
	if par := run(2); par != serial {
		t.Error("loaded study diverged between 1 and 2 workers")
	}
}

// TestRunLoadedStudySharded runs the shardable slice of the study
// host-sharded and requires byte-identical render against serial.
func TestRunLoadedStudySharded(t *testing.T) {
	o := LoadedOptions{
		Hosts: 5, Requests: 2,
		Qdisc:      lab.QdiscConfig{Kind: lab.QdiscRED},
		CrossFlows: 1,
		Parallel:   1,
	}
	serialRes, err := RunLoadedStudy(o)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	o.Shards = 2
	shardRes, err := RunLoadedStudy(o)
	if err != nil {
		t.Fatalf("sharded: %v", err)
	}
	if serialRes.Render() != shardRes.Render() {
		t.Error("sharded loaded study diverged from serial")
	}
}

// TestRunLoadedStudyDrainsOrphanedTeardown is the regression pin for a
// livelock: under burst loss a cross-traffic flow's closing FIN can be
// lost after its peer's PCB has already expired out of TIME_WAIT, so
// the retransmissions go unanswered forever — and before TCP (and
// rudp) grew a retransmission give-up, the event queue never drained
// and this exact configuration (the CLI's default seed path) spun for
// hundreds of simulated years. It must now complete, with the measured
// requests untouched by the orphaned teardown.
func TestRunLoadedStudyDrainsOrphanedTeardown(t *testing.T) {
	o := LoadedOptions{
		Hosts: 5, Requests: 2,
		Qdisc:      lab.QdiscConfig{Kind: lab.QdiscRED},
		BurstLoss:  sim.GEParams{PGoodBad: 0.002, PBadGood: 0.2, LossBad: 0.5},
		CrossFlows: 2,
		Parallel:   1,
		BaseSeed:   0,
	}
	res, err := RunLoadedStudy(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if want := 2 * 4; row.Requests != want {
			t.Errorf("%s: %d requests, want %d", row.Transport, row.Requests, want)
		}
		if row.Errors != 0 {
			t.Errorf("%s: %d errors (give-up bled into measured flows)", row.Transport, row.Errors)
		}
	}
}
