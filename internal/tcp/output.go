package tcp

import (
	"repro/internal/checksum"
	"repro/internal/cost"
	"repro/internal/ip"
	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/sim"
	"repro/internal/trace"
)

// output runs tcp_output until it decides there is nothing more to send.
//
// It is serialized per connection, the analogue of BSD running tcp_output
// at splnet: CPU charges inside sendSegment yield to the event loop, so
// without the lock a user send (sosend's PRU_SEND) and input-side
// processing could both be inside tcp_output at once, each capturing the
// same snd_nxt and together consuming phantom sequence space no ACK could
// ever cover. A caller that finds output busy sleeps until the lock is
// free and then re-evaluates the send decision against current state, as
// a uniprocessor kernel blocking on the spl level would.
func (c *Conn) output(p *sim.Proc) {
	for c.outBusy {
		c.outWait.Wait(p)
	}
	c.outBusy = true
	for c.outputOnce(p) {
	}
	c.outBusy = false
	c.outWait.WakeAll()
}

// outputFlags returns the header flags implied by the connection state.
func (c *Conn) outputFlags() uint8 {
	switch c.state {
	case StateSynSent:
		return FlagSYN
	case StateSynRcvd:
		return FlagSYN | FlagACK
	case StateFinWait1, StateLastAck, StateClosing:
		return FlagFIN | FlagACK
	case StateClosed, StateListen:
		return FlagACK
	default:
		return FlagACK
	}
}

// outputOnce is one pass of the BSD tcp_output send decision. It reports
// whether the caller should loop for another segment ("sendalot").
func (c *Conn) outputOnce(p *sim.Proc) bool {
	idle := c.sndMax == c.sndUna
	off := c.sndNxt.Diff(c.sndUna)
	if off < 0 {
		off = 0
	}
	win := min2(c.sndWnd, c.cwnd)
	flags := c.outputFlags()

	sbLen := c.so.Snd.Len()
	length := min2(sbLen-off, win-off)
	if length < 0 {
		length = 0
	}
	sendalot := false
	if length > c.mss {
		length = c.mss
		sendalot = true
	}
	// The FIN consumes sequence space after all data.
	if flags&FlagFIN != 0 && off+length < sbLen {
		flags &^= FlagFIN
	}

	send := false
	switch {
	case length == c.mss && length > 0:
		send = true
	case length > 0 && (idle || c.noDelay) && off+length == sbLen:
		// Nagle: a sub-MSS segment goes out only when nothing is
		// outstanding (or TCP_NODELAY) and it carries all queued data.
		send = true
	case length > 0 && off+length == sbLen && flags&FlagFIN != 0:
		send = true
	}
	if flags&FlagSYN != 0 && c.sndNxt == c.iss {
		send = true
	}
	if flags&FlagFIN != 0 && (!c.finSent || c.sndNxt == c.sndUna) {
		send = true
	}
	if c.flagAckNow {
		send = true
	}
	// Window update: advertise when the window has opened by two
	// segments or half the buffer (BSD's receiver silly-window rule).
	// The opening must be strictly positive: with a tiny socket buffer
	// Hiwat/2 is zero, and a zero "opening" must not qualify or every
	// pass would send an update and the two ends would chatter forever.
	rcvSpace := c.so.Rcv.Space()
	if c.state >= StateEstablished && rcvSpace > 0 {
		adv := c.rcvNxt.Add(rcvSpace).Diff(c.rcvAdv)
		if adv > 0 && (adv >= 2*c.mss || adv >= c.so.Rcv.Hiwat/2) {
			send = true
		}
	}
	if !send {
		return false
	}

	c.sendSegment(p, flags, off, length)

	more := sbLen - (off + length)
	return sendalot && more > 0 && off+length < win
}

// sendSegment builds and transmits one segment of the given length from
// send-buffer offset off.
func (c *Conn) sendSegment(p *sim.Proc, flags uint8, off, length int) {
	k := c.K
	key := c.pcbEntry.Key

	th := Header{
		SrcPort: key.LocalPort,
		DstPort: key.RemotePort,
		Seq:     c.sndNxt,
		Ack:     c.rcvNxt,
		Flags:   flags,
		Win:     clampWin(c.so.Rcv.Space()),
	}
	if flags&FlagSYN != 0 {
		th.Seq = c.iss
		th.MSS = uint16(c.S.mtuMSS())
		if c.wantCksumOff {
			th.AltCksum = AltCksumNone
		}
	}
	if flags&FlagACK == 0 {
		th.Ack = 0
	}
	if length > 0 && off+length == c.so.Snd.Len() {
		th.Flags |= FlagPSH
	}

	// Tag the process with this segment's on-wire identity for the rest
	// of the transmit path: every CPU charge from here down — mcopy,
	// output processing, checksum, ip_output, the driver — attributes to
	// this packet in the event stream. The tag nests, so an ACK sent
	// from inside tcp_input restores the inbound segment's identity on
	// pop. Tags exist only for that attribution, so an untraced run
	// skips the push — pushing boxes the identity into an interface,
	// one heap allocation per segment on the hot path.
	if k.Trace.PacketsEnabled() {
		pktID := trace.PacketID{
			Src:     key.LocalAddr,
			Dst:     key.RemoteAddr,
			SrcPort: key.LocalPort,
			DstPort: key.RemotePort,
			Seq:     uint32(th.Seq),
		}
		p.PushTag(pktID)
		defer p.PopTag()
		k.Trace.Event(trace.Event{
			Kind: trace.EvTCPOutput, At: k.Now(), ID: pktID,
			Len: length, Aux: int64(th.Flags),
		})
	}

	// mcopy: the data sent is a copy of the socket buffer chain, kept
	// there for retransmission (§2.2.3: "the copy in mcopy only occurs
	// on sends, and is made from the mbuf chain for retransmissions").
	var data *mbuf.Mbuf
	if length > 0 {
		var cs mbuf.CopyStats
		data, cs = k.Pool.Copy(c.so.Snd.Chain(), off, length)
		d := sim.Time(cs.MbufsAllocated)*(k.Cost.MbufAlloc+k.Cost.MbufCopyFix) +
			sim.Time(cs.ClustersRef)*k.Cost.ClusterRef +
			sim.Time(k.Cost.UserBcopy.PerByte*float64(cs.BytesCopied))
		k.Use(p, trace.LayerTCPMcopy, d)
	}

	// Remaining TCP output processing: the paper's "segment" row.
	k.Use(p, trace.LayerTCPSegmentTx, k.Cost.TCPOutputSegment.Cost(length))

	// Header mbuf. The marshal scratch lives on the stack; Append copies
	// it into the mbuf.
	hm := k.AllocMbuf(p, trace.LayerTCPSegmentTx)
	hdrLen := th.Len()
	var hdr [maxHeaderLen]byte
	th.Marshal(hdr[:hdrLen])
	hm.Append(hdr[:hdrLen])
	hm.SetNext(data)

	c.fillChecksum(p, hm, hdrLen, length, flags)

	c.S.Stats.SegsOut++
	c.S.IP.Output(p, c.remoteAddr(), ip.ProtoTCP, hm)

	// Advance send state.
	seqLen := length
	if flags&FlagSYN != 0 {
		seqLen++
	}
	if flags&FlagFIN != 0 {
		seqLen++
		c.finSent = true
	}
	c.sndNxt = c.sndNxt.Add(seqLen)
	if c.sndNxt.Gt(c.sndMax) {
		c.sndMax = c.sndNxt
		// Time this transmission for RTT if nothing is being timed.
		if !c.rtTiming && seqLen > 0 {
			c.rtTiming = true
			c.rtSeq = th.Seq
			c.rtStart = k.Now()
		}
	}
	if c.sndUna != c.sndMax {
		c.setRexmt()
	}
	// Record the advertised window edge for the update rule.
	adv := c.rcvNxt.Add(int(th.Win))
	if adv.Gt(c.rcvAdv) {
		c.rcvAdv = adv
	}
	c.flagAckNow = false
	c.flagDelAck = false
}

// fillChecksum computes and stores the TCP checksum into the marshaled
// header at the front of chain hm, according to the stack's mode, and
// charges the corresponding cost. The bytes are real in every mode except
// elimination, where the field stays zero by agreement.
func (c *Conn) fillChecksum(p *sim.Proc, hm *mbuf.Mbuf, hdrLen, dataLen int, flags uint8) {
	k := c.K
	segLen := hdrLen + dataLen
	key := c.pcbEntry.Key

	// Checksum elimination applies only once negotiated and never to
	// SYN segments; a stack configured for elimination whose peer did
	// not agree falls back to the standard checksum, so mismatched
	// configurations interoperate instead of blackholing.
	if c.cksumOff && flags&FlagSYN == 0 {
		return
	}
	switch c.S.Mode {
	case cost.ChecksumIntegrated:
		// The data mbufs carry partial sums computed during copyin;
		// fold them with a freshly summed header (§4.1.1). Invalidated
		// stashes (segment boundaries that split an mbuf) fall back to
		// summing that mbuf's bytes.
		k.Use(p, trace.LayerTCPCksumTx, k.Cost.IntegratedTxFixed)
		ps := checksum.TCPPseudo(key.LocalAddr, key.RemoteAddr, segLen)
		ps.Add(hm.Bytes())
		k.Use(p, trace.LayerTCPCksumTx, k.Cost.TCPKernelChecksum.Cost(hdrLen))
		for m := hm.Next(); m != nil; m = m.Next() {
			if m.CsumValid {
				k.Use(p, trace.LayerTCPCksumTx, k.Cost.ChecksumCombine)
				ps.Combine(m.Csum)
			} else {
				k.Use(p, trace.LayerTCPCksumTx,
					sim.Time(k.Cost.TCPKernelChecksum.PerByte*float64(m.Len())))
				ps.Add(m.Bytes())
			}
		}
		storeChecksum(hm, ps.Checksum())
	default:
		nm := mbuf.ChainCount(hm)
		k.Use(p, trace.LayerTCPCksumTx,
			k.Cost.TCPKernelChecksum.Cost(segLen)+sim.Time(nm)*k.Cost.TCPCksumPerMbuf)
		ps := checksum.TCPPseudo(key.LocalAddr, key.RemoteAddr, segLen)
		for m := hm; m != nil; m = m.Next() {
			ps.Add(m.Bytes())
		}
		storeChecksum(hm, ps.Checksum())
	}
}

// storeChecksum writes ck into the checksum field of the header mbuf.
func storeChecksum(hm *mbuf.Mbuf, ck uint16) {
	b := hm.Bytes()
	b[16] = byte(ck >> 8)
	b[17] = byte(ck)
}

// clampWin narrows a window to the 16-bit header field.
func clampWin(w int) uint16 {
	if w < 0 {
		return 0
	}
	if w > 65535 {
		return 65535
	}
	return uint16(w)
}

// pseudoPartial builds the verification pseudo-header from a received IP
// header.
func pseudoPartial(h ip.Header, segLen int) checksum.Partial {
	return checksum.TCPPseudo(h.Src, h.Dst, segLen)
}

// verifyIntegrated checks an inbound segment using the partial sums the
// ATM driver stashed during its device-to-kernel copy.
func verifyIntegrated(p *sim.Proc, k *kern.Kernel, h ip.Header, m *mbuf.Mbuf, segLen int) bool {
	ps := pseudoPartial(h, segLen)
	for c := m; c != nil; c = c.Next() {
		if c.CsumValid {
			k.Use(p, trace.LayerTCPCksumRx, k.Cost.ChecksumCombine)
			ps.Combine(c.Csum)
		} else {
			k.Use(p, trace.LayerTCPCksumRx,
				sim.Time(k.Cost.TCPKernelChecksum.PerByte*float64(c.Len())))
			ps.Add(c.Bytes())
		}
	}
	return ps.Sum16() == 0xffff
}
