package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunFanInText(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-workload", "fanin", "-hosts", "5", "-reqs", "4"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fanin/4c/list") || !strings.Contains(out, "p99") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestRunCompareOrgs(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-workload", "churn", "-hosts", "3", "-conns", "4", "-compare"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "churn/2c/list") || !strings.Contains(out, "churn/2c/hash") {
		t.Fatalf("expected both organizations:\n%s", out)
	}
}

// TestFanIn16ParallelBitIdentical is the acceptance check: a 16-client
// fan-in run's JSON output is identical at any -parallel level for the
// same seed.
func TestFanIn16ParallelBitIdentical(t *testing.T) {
	jsonAt := func(workers string) string {
		var buf bytes.Buffer
		err := run([]string{"-workload", "fanin", "-hosts", "17", "-reqs", "3",
			"-trials", "4", "-seed", "1994", "-parallel", workers, "-json"}, &buf)
		if err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := jsonAt("1")
	parallel := jsonAt("4")
	if serial != parallel {
		t.Fatal("16-client fan-in JSON differs between -parallel 1 and 4")
	}
	var outs []struct {
		Hosts    int     `json:"hosts"`
		Requests int     `json:"requests"`
		P99      float64 `json:"p99_us"`
	}
	if err := json.Unmarshal([]byte(serial), &outs); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(outs) != 4 {
		t.Fatalf("got %d outcomes, want 4", len(outs))
	}
	for _, o := range outs {
		if o.Hosts != 17 || o.Requests != 16*3 || o.P99 <= 0 {
			t.Fatalf("implausible outcome: %+v", o)
		}
	}
}

func TestRunBulkAndEcho(t *testing.T) {
	for _, wl := range []string{"bulk", "echo"} {
		var buf bytes.Buffer
		if err := run([]string{"-workload", wl, "-hosts", "2", "-reqs", "4",
			"-bytes", "20000", "-json"}, &buf); err != nil {
			t.Fatalf("%s: %v", wl, err)
		}
		var outs []struct {
			Workload string `json:"workload"`
			Requests int    `json:"requests"`
		}
		if err := json.Unmarshal(buf.Bytes(), &outs); err != nil {
			t.Fatalf("%s: invalid JSON: %v", wl, err)
		}
		if len(outs) != 1 || outs[0].Workload != wl || outs[0].Requests == 0 {
			t.Fatalf("%s: unexpected outcome %+v", wl, outs)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-workload", "warp"},
		{"-hosts", "1"},
		{"-link", "token-ring"},
		{"-trials", "0"},
		{"-loss", "1.5"},
		{"-link", "ether", "-loss", "0.001"},
		{"-shards", "-1"},
		{"-shards", "4", "-link", "ether"},
		{"-shards", "4", "-loss", "0.001"},
		{"-shards", "4", "-burstloss", "0.001"},
		{"-burstloss", "1.5"},
		{"-crosstraffic", "-1"},
		{"-qdisc", "codel"},
		{"-link", "ether", "-qdisc", "red"},
		{"-transport", "sctp"},
		{"-workload", "churn", "-transport", "rudp"},
		{"-workload", "bulk", "-crosstraffic", "2"},
		{"-workload", "loaded", "-link", "ether"},
		{"-workload", "loaded", "-fabric", "fattree"},
		{"-workload", "loaded", "-transport", "rudp"},
		{"-workload", "loaded", "-loss", "0.001"},
		{"-workload", "loaded", "-stream", "on"},
		{"-workload", "loaded", "-stagger", "100"},
		{"-workload", "loaded", "-compare"},
		{"-workload", "loaded", "-hashpcb"},
		{"-workload", "loaded", "-trials", "2"},
		// Fault flags in incompatible workloads, same convention: rejected
		// rather than silently dropped.
		{"-faults", "-1"},
		{"-crashat", "-1"},
		{"-downtime", "-1"},
		{"-workload", "fanin", "-crashat", "100"},
		{"-workload", "fanin", "-downtime", "100"},
		{"-workload", "loaded", "-faults", "2"},
		{"-workload", "bulk", "-faults", "1"},
		{"-workload", "churn", "-faults", "1"},
		{"-workload", "faults", "-link", "ether"},
		{"-workload", "faults", "-fabric", "fattree"},
		{"-workload", "faults", "-transport", "rudp"},
		{"-workload", "faults", "-loss", "0.001"},
		{"-workload", "faults", "-burstloss", "0.001"},
		{"-workload", "faults", "-qdisc", "red"},
		{"-workload", "faults", "-crosstraffic", "1"},
		{"-workload", "faults", "-faults", "2"},
		{"-workload", "faults", "-stream", "on"},
		{"-workload", "faults", "-stagger", "100"},
		{"-workload", "faults", "-compare"},
		{"-workload", "faults", "-hashpcb"},
		{"-workload", "faults", "-trials", "2"},
		{"-workload", "faults", "-shards", "2"},
	} {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

// TestRunLoadedText smokes the loaded study end to end through the CLI:
// both transports under RED, burst loss, and cross traffic.
func TestRunLoadedText(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-workload", "loaded", "-hosts", "4", "-reqs", "3",
		"-qdisc", "red", "-burstloss", "0.001", "-crosstraffic", "1"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"loaded fan-in", "tcp", "rudp", "Server CPU attribution"} {
		if !strings.Contains(out, want) {
			t.Fatalf("loaded output missing %q:\n%s", want, out)
		}
	}
}

// TestRunFaultsText smokes the crash-recovery study end to end through
// the CLI: both transports under the same seeded crash schedule, with
// recovery quantiles in the rendered table.
func TestRunFaultsText(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-workload", "faults", "-hosts", "4", "-reqs", "4",
		"-crashat", "100", "-downtime", "400"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"crash recovery", "tcp", "rudp", "Rec mean", "Goodput"} {
		if !strings.Contains(out, want) {
			t.Fatalf("faults output missing %q:\n%s", want, out)
		}
	}
}

// TestFaultsParallelBitIdentical pins the fault study's determinism
// contract: same crash schedule, same seed, byte-identical JSON at any
// -parallel level.
func TestFaultsParallelBitIdentical(t *testing.T) {
	jsonAt := func(workers string) string {
		var buf bytes.Buffer
		err := run([]string{"-workload", "faults", "-hosts", "4", "-reqs", "4",
			"-crashat", "100", "-downtime", "400",
			"-seed", "7", "-parallel", workers, "-json"}, &buf)
		if err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := jsonAt("1")
	parallel := jsonAt("2")
	if serial != parallel {
		t.Fatal("fault study JSON differs between -parallel 1 and 2")
	}
	var res struct {
		Rows []struct {
			Transport string
			Outages   int
			Errors    int
		}
	}
	if err := json.Unmarshal([]byte(serial), &res); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2 (tcp and rudp)", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Outages == 0 {
			t.Fatalf("%s: no outages recorded; the crash should sever every client", row.Transport)
		}
		if row.Errors != 0 {
			t.Fatalf("%s: %d errors, want 0", row.Transport, row.Errors)
		}
	}
}

// TestFanInLinkFlapsShardedBitIdentical pins the shard-safe fault
// subset: a fan-in under seeded link flaps produces byte-identical JSON
// serial and host-sharded, because each flap flips per-entity state on
// the entity's owning shard from the host's own splitmix64 stream.
func TestFanInLinkFlapsShardedBitIdentical(t *testing.T) {
	jsonAt := func(shards string) string {
		var buf bytes.Buffer
		err := run([]string{"-workload", "fanin", "-hosts", "9", "-reqs", "3",
			"-faults", "2", "-seed", "5", "-json", "-shards", shards}, &buf)
		if err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := jsonAt("0")
	for _, shards := range []string{"2", "4"} {
		if sharded := jsonAt(shards); sharded != serial {
			t.Fatalf("-shards %s: link-flap fan-in JSON diverged from serial", shards)
		}
	}
}

// goldenLoadSHA256 is the SHA-256 of the 8-client fan-in JSON at seed
// 1994, captured on the pre-overhaul (PR 3) tree; see the matching
// golden tests in cmd/tables and cmd/pkttrace.
const goldenLoadSHA256 = "51d27d1a4df774f64a0dd433ed4a94ef553a299cace3dccdcf5c51200d143c85"

func TestGoldenJSONByteIdentical(t *testing.T) {
	for _, parallel := range []string{"1", "4"} {
		var buf bytes.Buffer
		args := []string{"-workload", "fanin", "-hosts", "9", "-reqs", "4",
			"-seed", "1994", "-json", "-parallel", parallel}
		if err := run(args, &buf); err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(buf.Bytes())
		if got := hex.EncodeToString(sum[:]); got != goldenLoadSHA256 {
			t.Errorf("-parallel %s: output hash %s, want golden %s (simulated results changed)",
				parallel, got, goldenLoadSHA256)
		}
	}
}

// TestGoldenJSONShardedByteIdentical gates sharded execution against the
// same golden hash as the serial path: -shards changes how the event
// loop is driven, never what it computes, so the sharded run must
// reproduce the PR 3 golden output to the byte.
func TestGoldenJSONShardedByteIdentical(t *testing.T) {
	for _, shards := range []string{"2", "4", "7"} {
		var buf bytes.Buffer
		args := []string{"-workload", "fanin", "-hosts", "9", "-reqs", "4",
			"-seed", "1994", "-json", "-shards", shards}
		if err := run(args, &buf); err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(buf.Bytes())
		if got := hex.EncodeToString(sum[:]); got != goldenLoadSHA256 {
			t.Errorf("-shards %s: output hash %s, want golden %s (sharded run diverged from serial)",
				shards, got, goldenLoadSHA256)
		}
	}
}

// goldenRUDPSHA256 is the SHA-256 of the same 8-client fan-in JSON over
// the reliable-UDP transport, captured when the transport landed and
// re-captured when the header gained the AckNone flag (packets sent
// before the first reception shrank to 3-byte headers).
const goldenRUDPSHA256 = "33907662ee75ec430eff746f8f583ce8d9e0c7ebc84639fddcdc85403aff6976"

// TestGoldenRUDPByteIdentical pins the rudp fan-in output byte for byte,
// serial and host-sharded: the rival transport is as deterministic as
// TCP, and sharding must not perturb it.
func TestGoldenRUDPByteIdentical(t *testing.T) {
	for _, shards := range []string{"0", "2", "3"} {
		var buf bytes.Buffer
		args := []string{"-workload", "fanin", "-transport", "rudp",
			"-hosts", "9", "-reqs", "4", "-seed", "1994", "-json", "-shards", shards}
		if err := run(args, &buf); err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(buf.Bytes())
		if got := hex.EncodeToString(sum[:]); got != goldenRUDPSHA256 {
			t.Errorf("-shards %s: rudp output hash %s, want golden %s", shards, got, goldenRUDPSHA256)
		}
	}
}
