package workload

import (
	"testing"

	"repro/internal/lab"
	"repro/internal/sim"
)

// faultCfg is the fault-study test topology: a routed hub fabric (so
// the crash exercises the switch-port down path too) with the leak gate
// armed — a crash trial must strand no mbuf chains.
func faultCfg(seed uint64) lab.Config {
	return lab.Config{Link: lab.LinkATM, Seed: seed, CheckLeaks: true}
}

// runFaults runs one fault-recovery trial and asserts the shared
// invariants: every request eventually completed, no payload
// corruption, and at least one client recorded a recovery sample.
func runFaults(t *testing.T, g FaultRecovery, seed uint64) (*Result, *lab.Lab) {
	t.Helper()
	l := lab.NewTopology(faultCfg(seed), 5)
	r, err := g.Run(l)
	if err != nil {
		t.Fatalf("FaultRecovery.Run: %v", err)
	}
	clients := 4
	if want := clients * g.withDefaults().Requests; r.Requests != want {
		t.Fatalf("Requests = %d, want %d", r.Requests, want)
	}
	if r.Errors != 0 {
		t.Fatalf("Errors = %d, want 0", r.Errors)
	}
	if len(r.Recoveries) == 0 {
		t.Fatalf("no recovery samples; the crash should have severed every client")
	}
	for _, rec := range r.Recoveries {
		if rec <= 0 {
			t.Fatalf("non-positive recovery sample %v", rec)
		}
	}
	return r, l
}

// TestFaultRecoveryTCP pins the TCP crash trial: clients survive the
// server crash, record recoveries, and leave the lab leak-free (the
// Reset below runs under the CheckLeaks gate).
func TestFaultRecoveryTCP(t *testing.T) {
	g := FaultRecovery{Requests: 8, Interval: 100 * sim.Millisecond,
		CrashAt: 250 * sim.Millisecond, Downtime: sim.Second}
	_, l := runFaults(t, g, 1)
	if err := l.Reset(faultCfg(1), 0); err != nil {
		t.Fatalf("leak-gated reset after crash trial: %v", err)
	}
}

// TestFaultRecoveryRUDP is the same trial on the rival transport.
func TestFaultRecoveryRUDP(t *testing.T) {
	g := FaultRecovery{Transport: TransportRUDP, Requests: 8,
		Interval: 100 * sim.Millisecond,
		CrashAt:  250 * sim.Millisecond, Downtime: sim.Second}
	_, l := runFaults(t, g, 1)
	if err := l.Reset(faultCfg(1), 0); err != nil {
		t.Fatalf("leak-gated reset after crash trial: %v", err)
	}
}

// TestFaultRecoveryDeterministic pins run-to-run determinism of the
// crash trial: same schedule, same seed, byte-identical latencies and
// recovery samples.
func TestFaultRecoveryDeterministic(t *testing.T) {
	for _, tr := range []string{TransportTCP, TransportRUDP} {
		g := FaultRecovery{Transport: tr, Requests: 6,
			Interval: 100 * sim.Millisecond,
			CrashAt:  250 * sim.Millisecond, Downtime: sim.Second}
		a, _ := runFaults(t, g, 7)
		b, _ := runFaults(t, g, 7)
		if len(a.Latencies) != len(b.Latencies) {
			t.Fatalf("%s: latency counts differ: %d vs %d", tr, len(a.Latencies), len(b.Latencies))
		}
		for i := range a.Latencies {
			if a.Latencies[i] != b.Latencies[i] {
				t.Fatalf("%s: latency %d differs: %v vs %v", tr, i, a.Latencies[i], b.Latencies[i])
			}
		}
		if len(a.Recoveries) != len(b.Recoveries) {
			t.Fatalf("%s: recovery counts differ: %d vs %d", tr, len(a.Recoveries), len(b.Recoveries))
		}
		for i := range a.Recoveries {
			if a.Recoveries[i] != b.Recoveries[i] {
				t.Fatalf("%s: recovery %d differs: %v vs %v", tr, i, a.Recoveries[i], b.Recoveries[i])
			}
		}
	}
}
