package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunBothSides(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-iters", "3", "-parallel", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table 2") || !strings.Contains(out, "Table 3") {
		t.Fatalf("expected both tables, got:\n%s", out)
	}
}

func TestRunTxOnly(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-iters", "3", "-side", "tx"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table 2") || strings.Contains(out, "Table 3") {
		t.Fatalf("expected only the transmit table, got:\n%s", out)
	}
}

func TestRunJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-iters", "3", "-side", "rx", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var results []struct {
		Side    string
		PerSize map[string]struct{ Total float64 }
	}
	if err := json.Unmarshal(buf.Bytes(), &results); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(results) != 1 || results[0].Side != "receive" {
		t.Fatalf("unexpected JSON: %+v", results)
	}
	if results[0].PerSize["8000"].Total <= 0 {
		t.Fatal("8000B total missing from JSON")
	}
}

func TestRunBadSide(t *testing.T) {
	if err := run([]string{"-side", "sideways"}, &bytes.Buffer{}); err == nil {
		t.Fatal("bad side accepted")
	}
}
