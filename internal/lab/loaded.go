package lab

import (
	"fmt"

	"repro/internal/atm"
)

// QdiscKind selects the queue discipline installed on switch egress
// ports of a routed ATM fabric (Config.Qdisc). The two-host switchless
// fiber and Ethernet have no switch ports, so the knob is ignored there.
type QdiscKind int

// Available queue disciplines.
const (
	// QdiscNone keeps the switch's built-in drop-tail egress depth.
	QdiscNone QdiscKind = iota
	// QdiscDropTail is an explicit FIFO with a hard cell bound — the
	// qdisc-shaped twin of the built-in depth, the comparison baseline.
	QdiscDropTail
	// QdiscRED drops arrivals probabilistically once the EWMA queue
	// depth crosses a threshold (random early detection).
	QdiscRED
	// QdiscDRR serves per-VCI flow queues byte-fairly (deficit round
	// robin).
	QdiscDRR
)

// String names the discipline for reports and flag round-trips.
func (k QdiscKind) String() string {
	switch k {
	case QdiscDropTail:
		return "droptail"
	case QdiscRED:
		return "red"
	case QdiscDRR:
		return "drr"
	}
	return "none"
}

// ParseQdiscKind maps a flag string to a QdiscKind.
func ParseQdiscKind(s string) (QdiscKind, error) {
	switch s {
	case "", "none":
		return QdiscNone, nil
	case "droptail":
		return QdiscDropTail, nil
	case "red":
		return QdiscRED, nil
	case "drr":
		return QdiscDRR, nil
	}
	return QdiscNone, fmt.Errorf("unknown qdisc %q (none, droptail, red, drr)", s)
}

// QdiscConfig selects and parameterizes the egress queue discipline.
// Zero parameter values take the discipline's defaults (see atm.NewRED,
// atm.NewDRR); the zero QdiscConfig keeps the built-in drop-tail depth.
type QdiscConfig struct {
	Kind QdiscKind
	// LimitCells bounds the discipline's queue (cells); zero means
	// atm.DefaultPortQueueCells.
	LimitCells int
	// REDMinCells / REDMaxCells / REDMaxP / REDWeight parameterize RED;
	// zeros take the atm package defaults.
	REDMinCells int
	REDMaxCells int
	REDMaxP     float64
	REDWeight   float64
	// DRRQuantumBytes is DRR's per-flow byte credit per round; zero (or
	// anything below one cell) means one cell.
	DRRQuantumBytes int
}

// Enabled reports whether the configuration installs a discipline.
func (q QdiscConfig) Enabled() bool { return q.Kind != QdiscNone }

// build constructs one discipline instance with a private RNG seed (only
// RED draws from it).
func (q QdiscConfig) build(seed uint64) atm.Qdisc {
	switch q.Kind {
	case QdiscDropTail:
		return atm.NewDropTail(q.LimitCells)
	case QdiscRED:
		return atm.NewRED(q.REDMinCells, q.REDMaxCells, q.REDMaxP, q.REDWeight,
			q.LimitCells, seed)
	case QdiscDRR:
		return atm.NewDRR(q.DRRQuantumBytes, q.LimitCells)
	}
	return nil
}

// deriveSeed mixes a base seed with a stream index into an independent
// stream seed (splitmix64 finalizer over the pair). Per-port qdisc RNGs
// and per-host impairment chains take their seeds here, so every private
// stream is decorrelated from the environment RNG and from each other
// while staying a pure function of Config.Seed.
func deriveSeed(base, stream uint64) uint64 {
	z := base ^ 0x9e3779b97f4a7c15 + stream*0xbf58476d1ce4e5b9
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ z>>31
}

// applyQdisc installs (or removes) the configured discipline on every
// egress port of every switch in the fabric. Fresh instances are built
// on each call — construction is cheap and guarantees a Reset lab's
// disciplines match a fresh build's bit for bit. Per-port seeds derive
// from Config.Seed and the switch/port coordinates.
func applyQdisc(f *atm.Fabric, cfg Config) {
	if f == nil {
		return
	}
	sws := []*atm.Switch{f.Core}
	sws = append(sws, f.Leaves...)
	for si, sw := range sws {
		for pi := 0; pi < sw.NumPorts(); pi++ {
			var qd atm.Qdisc
			if cfg.Qdisc.Enabled() {
				qd = cfg.Qdisc.build(deriveSeed(cfg.Seed, uint64(si)<<16|uint64(pi)))
			}
			sw.Port(pi).SetQdisc(qd)
		}
	}
}

// applyImpairments configures each host's link-level impairment layer —
// the Gilbert–Elliott burst-loss chain and (ATM only) bounded cell
// reordering — with per-host seeds derived from Config.Seed. Adapters
// clear impairment state on Reset, so the lab re-applies on every build
// and reset; a zero BurstLoss and zero ReorderRate leave the receive
// path byte-identical to an unimpaired adapter.
func applyImpairments(l *Lab, cfg Config) {
	for i, h := range l.Hosts {
		seed := deriveSeed(cfg.Seed, 0x1000_0000+uint64(i))
		if h.ATMAdapter != nil {
			h.ATMAdapter.SetImpairments(cfg.BurstLoss, cfg.ReorderRate,
				cfg.ReorderDepth, seed)
		}
		if h.EthAdapter != nil {
			h.EthAdapter.SetImpairments(cfg.BurstLoss, seed)
		}
	}
}

// impaired reports whether the configuration enables any stochastic
// link impairment beyond the legacy fault knobs — the gate sharded
// execution checks (burst loss and reordering draw per-host streams,
// but the reorder hold-back interacts with cut staging, and fault
// studies compare serial runs only, so shards reject them like the
// other fault knobs).
func (c Config) impaired() bool {
	return c.BurstLoss.Enabled() || c.ReorderRate > 0
}
