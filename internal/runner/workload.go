package runner

import (
	"context"

	"repro/internal/lab"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// WorkloadTrial is one grid cell of a workload sweep: a topology
// configuration, its size, and the generator to drive it.
type WorkloadTrial struct {
	Label string
	Cfg   lab.Config
	// Hosts is the topology size (server + clients); values below 2 are
	// raised to 2.
	Hosts int
	Gen   workload.Generator
	// Shards selects deterministic host-sharded execution: values above 1
	// run the trial on a lab.Cluster with that many worker shards, which
	// is bit-identical to the serial run by contract. Zero or one runs
	// serially.
	Shards int
}

// WorkloadOutcome is the aggregated result of one workload trial, with
// the latency percentiles the fan-in study reports.
type WorkloadOutcome struct {
	Label string `json:"label"`
	Index int    `json:"index"`
	Seed  uint64 `json:"seed,omitempty"`

	Workload string `json:"workload"`
	Hosts    int    `json:"hosts"`
	Requests int    `json:"requests"`
	Errors   int    `json:"errors,omitempty"`
	Bytes    int64  `json:"bytes"`

	ElapsedMicros float64 `json:"elapsed_us"`
	MeanMicros    float64 `json:"mean_us"`
	P50Micros     float64 `json:"p50_us"`
	P95Micros     float64 `json:"p95_us"`
	P99Micros     float64 `json:"p99_us"`
	MinMicros     float64 `json:"min_us"`
	MaxMicros     float64 `json:"max_us"`

	// Trace is the per-packet timeline reconstruction of the trial,
	// present only when the trial's Cfg set lab.Config.PacketTrace.
	// It is built inside the trial's job from that trial's own lab, so
	// it is bit-identical at any worker count like every other field.
	Trace *trace.TimelineSet `json:"trace,omitempty"`

	Error string `json:"error,omitempty"`
}

// RunWorkloadSweep executes the trials through the worker pool. Each
// trial runs on its own pristine topology (warm from the worker's
// testbed cache or freshly built) with a grid-position-derived seed, so
// outcomes are bit-identical at any worker count.
func RunWorkloadSweep(ctx context.Context, trials []WorkloadTrial, o Options) ([]WorkloadOutcome, error) {
	jobs := make([]Job, len(trials))
	for i, t := range trials {
		t := t
		jobs[i] = Job{
			Label: t.Label,
			RunOn: func(ctx context.Context, tb *Testbeds, seed uint64) (any, error) {
				return runWorkloadTrial(tb, t, seed)
			},
		}
	}
	outs, err := Run(ctx, jobs, o)
	res := make([]WorkloadOutcome, len(outs))
	for i, out := range outs {
		wo := WorkloadOutcome{
			Label:    out.Label,
			Index:    out.Index,
			Seed:     out.Seed,
			Workload: trials[i].Gen.Name(),
			Hosts:    trials[i].hosts(),
		}
		if out.Err != nil {
			wo.Error = out.Err.Error()
		} else if agg, ok := out.Value.(WorkloadOutcome); ok {
			agg.Label, agg.Index, agg.Seed = wo.Label, wo.Index, wo.Seed
			wo = agg
		}
		res[i] = wo
	}
	return res, err
}

func (t WorkloadTrial) hosts() int {
	if t.Hosts < 2 {
		return 2
	}
	return t.Hosts
}

// runWorkloadTrial acquires the trial's topology — warm from the
// worker's cache when the shape matches — and runs the generator,
// sharded across a cluster's event loops when the trial asks for it.
func runWorkloadTrial(tb *Testbeds, t WorkloadTrial, seed uint64) (any, error) {
	var r *workload.Result
	var err error
	if t.Shards > 1 {
		var c *lab.Cluster
		c, err = tb.Cluster(ApplySeed(t.Cfg, seed), t.hosts(), t.Shards)
		if err != nil {
			return nil, err
		}
		r, err = workload.RunSharded(t.Gen, c)
	} else {
		r, err = t.Gen.Run(tb.Lab(ApplySeed(t.Cfg, seed), t.hosts()))
	}
	if err != nil {
		return nil, err
	}
	s := r.Sample()
	q := s.Quantiles()
	wo := WorkloadOutcome{
		Workload:      r.Workload,
		Hosts:         t.hosts(),
		Requests:      r.Requests,
		Errors:        r.Errors,
		Bytes:         r.Bytes,
		ElapsedMicros: r.Elapsed.Micros(),
		MeanMicros:    s.Mean(),
		P50Micros:     q.P50,
		P95Micros:     q.P95,
		P99Micros:     q.P99,
		MinMicros:     s.Min(),
		MaxMicros:     s.Max(),
	}
	if len(r.Events) > 0 {
		wo.Trace = trace.BuildTimelines(r.Events)
	}
	return wo, nil
}

// RenderWorkloadOutcomes formats workload outcomes as a fixed-width
// table with the percentile columns the fan-in study reads.
func RenderWorkloadOutcomes(title string, outs []WorkloadOutcome) string {
	t := stats.NewTable(title,
		"Cell", "Hosts", "N", "Mean (µs)", "p50", "p95", "p99", "Max (µs)")
	for _, o := range outs {
		if o.Error != "" {
			t.AddRow(o.Label, o.Hosts, 0, "error: "+o.Error, "", "", "", "")
			continue
		}
		t.AddRow(o.Label, o.Hosts, o.Requests, o.MeanMicros,
			o.P50Micros, o.P95Micros, o.P99Micros, o.MaxMicros)
	}
	return t.String()
}
