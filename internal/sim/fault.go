package sim

import (
	"fmt"
	"sort"
)

// FaultKind names one deterministic fault-injection action. Link flips
// are the shard-safe subset: they flip per-entity down flags read only
// by the entity's owning shard, so a schedule of flips runs bit-identical
// serial and host-sharded. Port failures and host crashes mutate shared
// fabric and stack state and are applied to serial runs only.
type FaultKind uint8

const (
	// FaultLinkDown drops every cell or frame arriving at the target
	// host's access link (both directions) until FaultLinkUp.
	FaultLinkDown FaultKind = iota
	// FaultLinkUp restores the target host's access link and, after a
	// FaultPortFail, its switch port.
	FaultLinkUp
	// FaultPortFail fails the target host's switch access port: the
	// link goes down and every VC routed through the port is torn down,
	// so recovery re-routes through on-demand VC setup. FaultLinkUp
	// restores the port.
	FaultPortFail
	// FaultHostCrash resets the target host's transport stacks mid-run —
	// PCBs, listeners, and in-flight retransmission state are lost, as
	// with a kernel crash — and takes the access link down.
	FaultHostCrash
	// FaultHostRestart brings a crashed host's link back up; the stack
	// restarts empty and applications must re-listen and reconnect.
	FaultHostRestart
)

// String names the kind for diagnostics.
func (k FaultKind) String() string {
	switch k {
	case FaultLinkDown:
		return "link-down"
	case FaultLinkUp:
		return "link-up"
	case FaultPortFail:
		return "port-fail"
	case FaultHostCrash:
		return "host-crash"
	case FaultHostRestart:
		return "host-restart"
	}
	return fmt.Sprintf("fault(%d)", uint8(k))
}

// ShardSafe reports whether the kind may run under host-sharded
// execution.
func (k FaultKind) ShardSafe() bool {
	return k == FaultLinkDown || k == FaultLinkUp
}

// FaultEvent is one scheduled one-shot fault: at virtual time At, apply
// Kind to Host's entity (its access link, switch port, or stack).
type FaultEvent struct {
	At   Time
	Kind FaultKind
	Host int
}

// FaultSchedule is a deterministic fault-injection plan: a set of timed
// one-shot events applied to a topology at the start of a run. The
// schedule is plain data — it draws nothing from the simulation's serial
// RNG stream, so an identical schedule replays identically at any shard
// count (for the shard-safe kinds) and perturbs no other random draw.
type FaultSchedule []FaultEvent

// Validate checks every event targets a host in [0, hosts) at a
// non-negative time.
func (s FaultSchedule) Validate(hosts int) error {
	for _, ev := range s {
		if ev.Host < 0 || ev.Host >= hosts {
			return fmt.Errorf("sim: fault %s targets host %d of %d", ev.Kind, ev.Host, hosts)
		}
		if ev.At < 0 {
			return fmt.Errorf("sim: fault %s at negative time %v", ev.Kind, ev.At)
		}
	}
	return nil
}

// ShardSafe reports whether every event in the schedule may run
// host-sharded.
func (s FaultSchedule) ShardSafe() bool {
	for _, ev := range s {
		if !ev.Kind.ShardSafe() {
			return false
		}
	}
	return true
}

// CrashSchedule is the canonical recovery-study plan: host crashes at
// `at` and restarts after `downtime`.
func CrashSchedule(host int, at, downtime Time) FaultSchedule {
	return FaultSchedule{
		{At: at, Kind: FaultHostCrash, Host: host},
		{At: at + downtime, Kind: FaultHostRestart, Host: host},
	}
}

// faultStreamSeed derives host h's private fault RNG seed from the base
// seed with a splitmix64 finalizer — the same per-entity stream
// construction the qdisc and impairment layers use, and for the same
// reason: draws for one entity never consume another entity's stream or
// the shared serial stream, so the schedule is shard-compatible and
// adding an entity leaves every other entity's draws unchanged.
func faultStreamSeed(base uint64, h int) uint64 {
	z := base + 0x9E3779B97F4A7C15*(uint64(h)+0x5EED_FA01)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// LinkFlaps builds a shard-safe schedule of random link flaps: each
// listed host flaps `flaps` times, with down times drawn uniformly over
// [0, window) from the host's own splitmix64-derived stream and each
// outage lasting `downtime`. Same base seed, same hosts ⇒ same schedule,
// at any shard count.
func LinkFlaps(base uint64, hosts []int, flaps int, window, downtime Time) FaultSchedule {
	var s FaultSchedule
	for _, h := range hosts {
		rng := NewRNG(faultStreamSeed(base, h))
		for k := 0; k < flaps; k++ {
			at := Time(rng.Float64() * float64(window))
			s = append(s, FaultEvent{At: at, Kind: FaultLinkDown, Host: h},
				FaultEvent{At: at + downtime, Kind: FaultLinkUp, Host: h})
		}
	}
	// Canonical order: by time, then host, then kind — so the schedule's
	// application order (and thus equal-time event sequencing) does not
	// depend on construction order.
	sort.SliceStable(s, func(i, j int) bool {
		if s[i].At != s[j].At {
			return s[i].At < s[j].At
		}
		if s[i].Host != s[j].Host {
			return s[i].Host < s[j].Host
		}
		return s[i].Kind < s[j].Kind
	})
	return s
}

// GEParams configures a Gilbert–Elliott two-state burst-loss chain: a
// link alternates between a Good and a Bad state with per-step
// transition probabilities, and each transmission unit (cell, frame) is
// lost with the current state's loss probability. Unlike a Bernoulli
// CellLossRate, losses cluster — the Bad state's sojourn is geometric
// with mean 1/PBadGood units — which is what kills several cells of one
// AAL frame at once and so converts cell-level impairment into whole
// segment loss far more often than independent drops of the same rate.
//
// The zero value disables the chain.
type GEParams struct {
	// PGoodBad is the per-unit probability of entering the Bad state.
	PGoodBad float64
	// PBadGood is the per-unit probability of leaving the Bad state;
	// the mean burst length is 1/PBadGood units.
	PBadGood float64
	// LossGood is the per-unit loss probability in the Good state
	// (usually 0 or very small).
	LossGood float64
	// LossBad is the per-unit loss probability in the Bad state.
	LossBad float64
}

// Enabled reports whether the chain does anything.
func (p GEParams) Enabled() bool {
	return p.PGoodBad > 0 || p.LossGood > 0
}

// StationaryLoss returns the long-run loss probability of the chain:
// the Bad-state occupancy times LossBad plus the Good-state occupancy
// times LossGood. It is what the property tests compare empirical rates
// against.
func (p GEParams) StationaryLoss() float64 {
	if p.PGoodBad <= 0 && p.PBadGood <= 0 {
		return p.LossGood
	}
	piBad := p.PGoodBad / (p.PGoodBad + p.PBadGood)
	return piBad*p.LossBad + (1-piBad)*p.LossGood
}

// GEChain is the running state of one link's Gilbert–Elliott chain. It
// draws from its own RNG — seeded per link, never the simulation
// environment's stream — so enabling burst loss on one link perturbs no
// other random draw and runs stay bit-reproducible. (Sharded execution
// still rejects burst-loss configurations at construction, like the
// other fault knobs, so fault studies compare serial runs only.)
type GEChain struct {
	P    GEParams
	seed uint64
	bad  bool
	rng  RNG
}

// Init (re)starts the chain in the Good state with the given seed.
func (c *GEChain) Init(p GEParams, seed uint64) {
	c.P = p
	c.seed = seed
	c.Reset()
}

// Reset rewinds the chain to its initial state for testbed reuse.
func (c *GEChain) Reset() {
	c.bad = false
	c.rng = *NewRNG(c.seed)
}

// Enabled reports whether Drop does anything.
func (c *GEChain) Enabled() bool { return c.P.Enabled() }

// Bad exposes the current state for tests.
func (c *GEChain) Bad() bool { return c.bad }

// Drop advances the chain one transmission unit and reports whether
// that unit is lost. Two draws per unit: the state transition, then the
// loss lottery in the (possibly new) state.
func (c *GEChain) Drop() bool {
	if c.bad {
		if c.rng.Float64() < c.P.PBadGood {
			c.bad = false
		}
	} else {
		if c.rng.Float64() < c.P.PGoodBad {
			c.bad = true
		}
	}
	pl := c.P.LossGood
	if c.bad {
		pl = c.P.LossBad
	}
	return pl > 0 && c.rng.Float64() < pl
}
