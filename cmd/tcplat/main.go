// Command tcplat runs one round-trip latency experiment on the simulated
// testbed: the echo benchmark of §1.2 under a chosen link, checksum mode,
// header-prediction setting, and transfer size.
//
// Examples:
//
//	tcplat -size 4                         # baseline ATM, 4-byte echo
//	tcplat -link ether -size 1400          # Ethernet comparison point
//	tcplat -mode none -size 8000           # checksum eliminated
//	tcplat -nopred -size 200               # header prediction disabled
//	tcplat -sweep                          # all paper sizes at once
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/lab"
	"repro/internal/stats"
)

func main() {
	var (
		size   = flag.Int("size", 4, "transfer size in bytes")
		link   = flag.String("link", "atm", "link type: atm or ether")
		mode   = flag.String("mode", "standard", "checksum mode: standard, integrated, or none")
		noPred = flag.Bool("nopred", false, "disable header prediction (PCB cache + fast path)")
		hash   = flag.Bool("hashpcb", false, "use the hash-table PCB organization")
		pcbs   = flag.Int("pcbs", 0, "extra idle PCBs inserted ahead of the benchmark connection")
		loss   = flag.Float64("loss", 0, "ATM cell loss probability")
		iters  = flag.Int("iters", 100, "measured iterations")
		warmup = flag.Int("warmup", 8, "warm-up iterations")
		seed   = flag.Uint64("seed", 0, "simulation RNG seed")
		sweep  = flag.Bool("sweep", false, "run every paper transfer size")
	)
	flag.Parse()

	cfg := lab.Config{
		DisablePrediction: *noPred,
		HashPCBs:          *hash,
		ExtraPCBs:         *pcbs,
		CellLossRate:      *loss,
		Seed:              *seed,
	}
	switch *link {
	case "atm":
		cfg.Link = lab.LinkATM
	case "ether":
		cfg.Link = lab.LinkEther
	default:
		fmt.Fprintf(os.Stderr, "tcplat: unknown link %q\n", *link)
		os.Exit(2)
	}
	switch *mode {
	case "standard":
		cfg.Mode = cost.ChecksumStandard
	case "integrated":
		cfg.Mode = cost.ChecksumIntegrated
	case "none":
		cfg.Mode = cost.ChecksumNone
	default:
		fmt.Fprintf(os.Stderr, "tcplat: unknown checksum mode %q\n", *mode)
		os.Exit(2)
	}

	opts := core.Options{Iterations: *iters, Warmup: *warmup}
	sizes := []int{*size}
	if *sweep {
		sizes = core.Sizes
	}

	t := stats.NewTable(
		fmt.Sprintf("Round-trip latency: %s link, %s checksum, prediction %v",
			cfg.Link, cfg.Mode, !cfg.DisablePrediction),
		"Size", "RTT (µs)")
	for _, s := range sizes {
		rtt, err := core.MeasureRTT(cfg, s, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcplat: size %d: %v\n", s, err)
			os.Exit(1)
		}
		t.AddRow(s, rtt)
	}
	fmt.Print(t.String())
}
