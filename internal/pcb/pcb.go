// Package pcb implements protocol control block demultiplexing the way
// BSD 4.4 alpha does (§3 of the paper): a singly linked list with new
// blocks inserted at the head, a linear-search lookup, and a single-entry
// most-recently-used cache in front of it. It also provides the hash-table
// organization the paper suggests ("a simple hash table implementation
// could eliminate the lookup problem entirely") so the two can be compared.
//
// Lookup returns how many list entries were traversed; the caller charges
// the cost model's per-entry search cost (≈1.3 µs on the DECstation),
// which is the constant the paper measures directly.
package pcb

// Key is the TCP/IP 4-tuple identifying a connection. A zero RemoteAddr or
// RemotePort is a wildcard, as in a listening socket's PCB.
type Key struct {
	LocalAddr  uint32
	RemoteAddr uint32
	LocalPort  uint16
	RemotePort uint16
}

// wildMatch reports whether a PCB bound to k accepts a packet addressed by
// probe, and how specific the match is (higher is more specific). BSD
// prefers fully specified PCBs over wildcard ones.
func wildMatch(k, probe Key) (bool, int) {
	if k.LocalPort != probe.LocalPort {
		return false, 0
	}
	if k.LocalAddr != 0 && k.LocalAddr != probe.LocalAddr {
		return false, 0
	}
	specificity := 0
	if k.RemoteAddr != 0 {
		if k.RemoteAddr != probe.RemoteAddr {
			return false, 0
		}
		specificity++
	}
	if k.RemotePort != 0 {
		if k.RemotePort != probe.RemotePort {
			return false, 0
		}
		specificity++
	}
	if k.LocalAddr != 0 {
		specificity++
	}
	return true, specificity
}

// PCB is one protocol control block. Owner points back at the protocol
// state (the TCP connection) that owns it.
type PCB struct {
	Key   Key
	Owner any
	next  *PCB
}

// Next returns the next PCB on the list (for inspection in tests).
func (p *PCB) Next() *PCB { return p.next }

// LookupResult describes what a lookup cost: whether the one-entry cache
// answered it and, if not, how many list entries (or hash probes) were
// examined. The caller converts these counts to simulated CPU time.
type LookupResult struct {
	CacheHit bool
	Searched int
}

// Table is a demultiplexing table. The zero value is a BSD-style list with
// the cache enabled; set UseHash for the hash-table organization and
// CacheDisabled to model the paper's prediction-disabled kernel.
type Table struct {
	head  *PCB
	count int
	cache *PCB

	// CacheDisabled turns off the single-entry PCB cache (one half of
	// "header prediction" as the paper uses the term).
	CacheDisabled bool
	// UseHash selects the constant-time hash organization instead of the
	// linear list for cache-miss lookups.
	UseHash bool
	hash    map[Key]*PCB

	// Counters for tests and reporting.
	Lookups       int64
	CacheHits     int64
	TotalSearched int64
}

// Len returns the number of PCBs in the table.
func (t *Table) Len() int { return t.count }

// Reset empties the table back to its zero-value behaviour — no entries,
// cold cache, cache enabled, list organization, zeroed counters — while
// retaining the hash map's buckets so a reused table repopulates without
// reallocating. Callers that want the hash organization or a disabled
// cache re-apply those knobs after the reset, exactly as they configured
// a fresh table.
func (t *Table) Reset() {
	t.head = nil
	t.count = 0
	t.cache = nil
	t.CacheDisabled = false
	t.UseHash = false
	clear(t.hash)
	t.Lookups, t.CacheHits, t.TotalSearched = 0, 0, 0
}

// Insert adds a PCB at the head of the list, the BSD insertion policy that
// makes recently created connections cheap to find (§3: "the insertion
// algorithm ... places the most recent creation at the head of the list").
func (t *Table) Insert(p *PCB) {
	p.next = t.head
	t.head = p
	t.count++
	if t.hash == nil {
		t.hash = make(map[Key]*PCB)
	}
	t.hash[p.Key] = p
}

// Remove deletes a PCB from the table. Removing a PCB that is not present
// is a no-op. The cache entry is invalidated if it pointed at p.
func (t *Table) Remove(p *PCB) {
	for cur, prev := t.head, (*PCB)(nil); cur != nil; prev, cur = cur, cur.next {
		if cur == p {
			if prev == nil {
				t.head = cur.next
			} else {
				prev.next = cur.next
			}
			cur.next = nil
			t.count--
			delete(t.hash, p.Key)
			if t.cache == p {
				t.cache = nil
			}
			return
		}
	}
}

// Rebind updates a PCB's key (e.g. when a listening socket's wildcard PCB
// becomes fully specified on connection establishment).
func (t *Table) Rebind(p *PCB, k Key) {
	delete(t.hash, p.Key)
	p.Key = k
	t.hash[k] = p
}

// Lookup finds the PCB for an incoming packet's 4-tuple. It consults the
// single-entry cache first (unless disabled), then searches — linearly
// down the list, or via the hash table when UseHash is set, falling back
// to a wildcard list scan for listening sockets. The LookupResult carries
// the work done so the caller can charge simulated time.
func (t *Table) Lookup(probe Key) (*PCB, LookupResult) {
	t.Lookups++
	if !t.CacheDisabled && t.cache != nil && t.cache.Key == probe {
		t.CacheHits++
		return t.cache, LookupResult{CacheHit: true}
	}
	var res LookupResult
	var found *PCB
	if t.UseHash {
		res.Searched = 1
		if p, ok := t.hash[probe]; ok {
			found = p
		}
	}
	if found == nil {
		// Linear scan, keeping the most specific wildcard match.
		bestSpec := -1
		searched := 0
		for p := t.head; p != nil; p = p.next {
			searched++
			if ok, spec := wildMatch(p.Key, probe); ok {
				if spec > bestSpec {
					found, bestSpec = p, spec
				}
				if spec == 3 { // fully specified: cannot do better
					break
				}
			}
		}
		res.Searched += searched
	}
	t.TotalSearched += int64(res.Searched)
	if found != nil && !t.CacheDisabled {
		t.cache = found
	}
	return found, res
}

// Entries returns the PCBs in list order (head first), for tests.
func (t *Table) Entries() []*PCB {
	var out []*PCB
	for p := t.head; p != nil; p = p.next {
		out = append(out, p)
	}
	return out
}
