// Package kern models the host operating system the protocol stack runs
// on: a single CPU, kernel code executing in process context or interrupt
// context, sleep/wakeup scheduling, and software interrupts. It is the
// ULTRIX 4.2A stand-in.
//
// The CPU is a busy-until cursor: each charge reserves the interval
// [max(now, busyUntil), +duration) and attributes it to a protocol layer
// in the trace recorder. Work requested while the CPU is busy starts when
// the CPU frees up, which is how interrupt processing, software-interrupt
// dispatch and process wakeup naturally delay one another — the queueing
// structure behind the paper's IPQ and Wakeup rows and behind the
// receive-side overlap effects at large transfer sizes.
//
// Every charge flows through Attribute, which records it twice when
// per-packet tracing is armed: as an aggregate span (the raw material of
// Tables 2 and 3) and as a typed EvCPU event carrying the identity of
// the packet the charging process is working on (its sim.Proc tag
// stack). That dual recording is what lets core.RunTimelineStudy prove
// the per-packet timelines and the breakdown tables are the same
// measurement; see docs/ARCHITECTURE.md for the full trace pipeline.
package kern

import (
	"repro/internal/cost"
	"repro/internal/mbuf"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Kernel is one host's operating system state.
type Kernel struct {
	Env   *sim.Env
	Cost  *cost.Model
	Trace *trace.Recorder
	Pool  *mbuf.Pool
	Name  string // host name, for diagnostics

	busyUntil sim.Time

	// NoSbCompress disables sock.Buffer's sbcompress coalescing,
	// restoring the pre-fix behaviour where every sub-MSS write stays its
	// own mbuf and TCP output pays mcopy's per-mbuf charge for each (the
	// ROADMAP 3b livelock). Only the watchdog revert-guard tests set it.
	NoSbCompress bool

	// wakeFn charges the scheduler's wakeup path when a process sleeping
	// via SleepOn resumes; bound once so arming it allocates nothing.
	wakeFn func(*sim.Proc) bool
}

// New returns a kernel for one host, sharing the simulation environment
// and using the given cost model.
func New(env *sim.Env, model *cost.Model, name string) *Kernel {
	k := &Kernel{
		Env:   env,
		Cost:  model,
		Trace: &trace.Recorder{},
		Pool:  &mbuf.Pool{},
		Name:  name,
	}
	k.wakeFn = func(p *sim.Proc) bool {
		return k.Use(p, trace.LayerWakeup, k.Cost.Wakeup)
	}
	return k
}

// Reset returns the kernel to its just-constructed state for testbed
// reuse: the CPU cursor rewinds to zero (the environment's clock has
// been reset), the trace recorder is cleared and disabled, and the mbuf
// pool's counters are zeroed while its free-lists — the recycled headers
// and cluster pages the next trial's steady state will run on — are
// retained. The cost model is re-bound so a reused host can run a trial
// with a different model.
func (k *Kernel) Reset(model *cost.Model) {
	k.Cost = model
	k.busyUntil = 0
	k.NoSbCompress = false
	k.Trace.Reset()
	k.Trace.Disable()
	k.Pool.Reset()
}

// Now returns the current virtual time.
func (k *Kernel) Now() sim.Time { return k.Env.Now() }

// BusyUntil returns the time the CPU becomes free.
func (k *Kernel) BusyUntil() sim.Time { return k.busyUntil }

// Use charges d of CPU time attributed to layer, executing in the context
// of process p. The process advances to the end of the charge; if the CPU
// is currently reserved by other work the charge starts after it. In the
// common case the charge completes inline — an ordinary function call —
// and Use returns true; when the process had to park for the CPU (or for
// an event scheduled inside the interval) Use returns false and the
// calling frame must return from Step immediately, resuming at the state
// it recorded before the call.
func (k *Kernel) Use(p *sim.Proc, layer trace.Layer, d sim.Time) bool {
	if d < 0 {
		panic("kern: negative CPU charge")
	}
	start := k.Env.Now()
	if k.busyUntil > start {
		start = k.busyUntil
	}
	end := start + d
	k.busyUntil = end
	k.Attribute(p, layer, start, end)
	return p.SleepUntil(end)
}

// Attribute records the interval [start, end] of CPU time against layer:
// always as an aggregate span (the Tables 2/3 raw material), and — when
// packet tracing is on — as a typed EvCPU event carrying the packet
// identity tagged on p, so the same charge joins the per-packet
// timeline. Charges made while p carries no packet tag (user copies
// before segmentation, scheduler wakeups) record with a zero identity
// and surface as unattributed in timeline reconstructions.
func (k *Kernel) Attribute(p *sim.Proc, layer trace.Layer, start, end sim.Time) {
	k.Trace.Span(layer, start, end)
	if k.Trace.PacketRecording() {
		k.Trace.Event(trace.Event{
			Kind:  trace.EvCPU,
			Layer: layer,
			At:    start,
			Dur:   end - start,
			ID:    k.PacketContext(p),
		})
	}
}

// PacketContext returns the packet identity the process is currently
// working on (the top of its tag stack), or the zero identity when the
// work belongs to no packet. p may be nil (plain event context).
func (k *Kernel) PacketContext(p *sim.Proc) trace.PacketID {
	if p == nil {
		return trace.PacketID{}
	}
	if id, ok := p.Tag().(trace.PacketID); ok {
		return id
	}
	return trace.PacketID{}
}

// SleepOn parks p on wq and arms the wakeup charge: once woken, p is
// charged the scheduler's wakeup path (run-queue to running) before its
// frame stack resumes. The time from wakeup to running is the paper's
// Wakeup row; the trace span covers both the CPU charge and any wait for
// the CPU. The calling frame must return from Step immediately after
// SleepOn; it re-enters — wakeup already charged — when the queue wakes
// it.
func (k *Kernel) SleepOn(p *sim.Proc, wq *sim.WaitQueue) {
	wq.Wait(p)
	p.OnWake(k.wakeFn)
}

// FreeChainCost returns the CPU cost of freeing the chain m (per-mbuf
// free cost times chain length). Callers charge it, then release the
// chain with Pool.Free; a nil chain costs nothing.
func (k *Kernel) FreeChainCost(m *mbuf.Mbuf) sim.Time {
	return sim.Time(mbuf.ChainCount(m)) * k.Cost.MbufFree
}
