package atm

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/cost"
	"repro/internal/ip"
	"repro/internal/kern"
	"repro/internal/sim"
)

// buildFabric assembles n hosts on a routed fabric with on-demand VC
// setup — the sparse counterpart of buildStar's eager mesh.
func buildFabric(t *testing.T, env *sim.Env, kind FabricKind, leafPorts, n int) (*Fabric, []*kern.Kernel, []*ip.Stack, []*Driver, []*swSink) {
	t.Helper()
	model := cost.DECstation5000()
	kerns := make([]*kern.Kernel, n)
	ips := make([]*ip.Stack, n)
	drvs := make([]*Driver, n)
	sinks := make([]*swSink, n)
	for i := 0; i < n; i++ {
		kerns[i] = kern.New(env, model, fmt.Sprintf("h%d", i))
		ips[i] = ip.NewStack(kerns[i], uint32(i+1))
		a := NewAdapter(kerns[i])
		drvs[i] = NewDriver(kerns[i], a, ips[i])
		sinks[i] = &swSink{env: env}
		ips[i].Register(99, sinks[i])
	}
	f := NewFabric(env, kind, model, leafPorts, drvs)
	return f, kerns, ips, drvs, sinks
}

// TestFabricHubMatchesEagerMesh is the timing-invisibility contract at
// the cell level: the same traffic through an on-demand hub fabric and
// through buildStar's eagerly meshed switch must produce identical
// delivery timelines — VC setup charges no simulated time and the wire
// carries the same VCIs, so the two are indistinguishable.
func TestFabricHubMatchesEagerMesh(t *testing.T) {
	traffic := func(env *sim.Env, kerns []*kern.Kernel, ips []*ip.Stack, sinks []*swSink) ([]sim.Time, [][]byte) {
		for i := 0; i < 3; i++ {
			i := i
			env.Spawn(fmt.Sprintf("tx%d", i), sim.LoopN(4, func(p *sim.Proc, k int) {
				payload := make([]byte, 200+env.RNG().Intn(1800))
				env.RNG().Fill(payload)
				m := kerns[i].Pool.AllocCluster()
				m.Append(payload)
				ips[i].Output(p, uint32((i+1)%3+1), 99, m)
			}))
		}
		env.Run()
		var at []sim.Time
		var got [][]byte
		for _, s := range sinks {
			at = append(at, s.at...)
			got = append(got, s.got...)
		}
		return at, got
	}

	envA := sim.NewEnv()
	envA.Seed(71)
	_, kernsA, ipsA, _, sinksA := buildStar(t, envA, 3)
	atA, gotA := traffic(envA, kernsA, ipsA, sinksA)

	envB := sim.NewEnv()
	envB.Seed(71)
	_, kernsB, ipsB, _, sinksB := buildFabric(t, envB, FabricHub, 0, 3)
	atB, gotB := traffic(envB, kernsB, ipsB, sinksB)

	if len(atA) != len(atB) || len(atA) != 12 {
		t.Fatalf("delivery counts differ: eager %d vs on-demand %d", len(atA), len(atB))
	}
	for i := range atA {
		if atA[i] != atB[i] || !bytes.Equal(gotA[i], gotB[i]) {
			t.Fatalf("delivery %d differs between eager mesh and on-demand fabric", i)
		}
	}
}

// TestFabricOnDemandSparsity pins the tentpole: VC state exists only for
// pairs that have communicated, never O(hosts²).
func TestFabricOnDemandSparsity(t *testing.T) {
	env := sim.NewEnv()
	f, kerns, ips, drvs, sinks := buildFabric(t, env, FabricHub, 0, 8)

	if f.Core.NumVCs() != 0 || f.NumRoutes() != 0 {
		t.Fatalf("fresh fabric holds %d switch VCs, %d routes; want 0", f.Core.NumVCs(), f.NumRoutes())
	}
	for i, d := range drvs {
		if d.NumTxVCs() != 0 || d.NumReassemblers() != 0 {
			t.Fatalf("fresh host %d holds %d tx VCs, %d reassemblers; want 0",
				i, d.NumTxVCs(), d.NumReassemblers())
		}
	}

	payload := make([]byte, 500)
	env.RNG().Fill(payload)
	env.Spawn("tx", sim.Steps(func(p *sim.Proc) {
		m := kerns[0].Pool.AllocCluster()
		m.Append(payload)
		ips[0].Output(p, 3, 99, m) // host 0 -> host 2, the only flow
	}))
	env.Run()

	if len(sinks[2].got) != 1 || !bytes.Equal(sinks[2].got[0], payload) {
		t.Fatal("datagram not delivered through on-demand VC")
	}
	if got := f.Core.NumVCs(); got != 1 {
		t.Fatalf("switch holds %d VC entries after one flow, want 1", got)
	}
	if got := f.NumRoutes(); got != 1 {
		t.Fatalf("fabric holds %d routes after one flow, want 1", got)
	}
	if drvs[0].NumTxVCs() != 1 || drvs[2].NumReassemblers() != 1 {
		t.Fatalf("flow endpoints hold %d tx VCs / %d reassemblers, want 1/1",
			drvs[0].NumTxVCs(), drvs[2].NumReassemblers())
	}
	for _, i := range []int{1, 3, 4, 5, 6, 7} {
		if drvs[i].NumTxVCs() != 0 {
			t.Fatalf("idle host %d grew %d tx VCs", i, drvs[i].NumTxVCs())
		}
	}
}

// TestFabricFatTreeCrossLeaf sends across leaves: the path must install
// exactly one entry per hop (source leaf, spine, destination leaf) and
// deliver intact, with the arriving VCI still naming the source host.
func TestFabricFatTreeCrossLeaf(t *testing.T) {
	env := sim.NewEnv()
	f, kerns, ips, drvs, sinks := buildFabric(t, env, FabricFatTree, 2, 6)
	if got := len(f.Leaves); got != 3 {
		t.Fatalf("6 hosts at 2 per leaf built %d leaves, want 3", got)
	}

	payload := make([]byte, 3000)
	env.RNG().Fill(payload)
	env.Spawn("tx", sim.Steps(func(p *sim.Proc) {
		m := kerns[0].Pool.AllocCluster()
		m.Append(payload)
		ips[0].Output(p, 6, 99, m) // host 0 (leaf 0) -> host 5 (leaf 2)
	}))
	env.Run()

	if len(sinks[5].got) != 1 || !bytes.Equal(sinks[5].got[0], payload) {
		t.Fatal("cross-leaf datagram not delivered intact")
	}
	if f.Leaves[0].NumVCs() != 1 || f.Core.NumVCs() != 1 || f.Leaves[2].NumVCs() != 1 {
		t.Fatalf("cross-leaf path entries: leaf0=%d core=%d leaf2=%d, want 1 each",
			f.Leaves[0].NumVCs(), f.Core.NumVCs(), f.Leaves[2].NumVCs())
	}
	if f.Leaves[1].NumVCs() != 0 {
		t.Fatalf("uninvolved leaf grew %d VC entries", f.Leaves[1].NumVCs())
	}
	// The last hop restores the source-naming convention.
	if _, ok := drvs[5].reasms[DefaultVCI+0]; !ok {
		t.Fatalf("destination reassembles on VCIs %v, want DefaultVCI+src (%d)",
			reasmVCIs(drvs[5]), DefaultVCI)
	}
}

func reasmVCIs(d *Driver) []uint16 {
	var out []uint16
	for vci := range d.reasms {
		out = append(out, vci)
	}
	return out
}

// TestFabricTeardownRecyclesTrunkVCIs pins idle-VC reclamation: tearing
// a cross-leaf route down must empty every switch table it touched,
// return its trunk VCIs to the links' pools (so the next setup reuses
// them), and drop the destination's reassembly context.
func TestFabricTeardownRecyclesTrunkVCIs(t *testing.T) {
	env := sim.NewEnv()
	f, _, _, drvs, _ := buildFabric(t, env, FabricFatTree, 2, 4)

	vci, ok := f.setup(0, 4) // host 0 (leaf 0) -> host 3 (leaf 1)
	if !ok {
		t.Fatal("setup failed")
	}
	if vci != DefaultVCI+3 {
		t.Fatalf("host-link tx VCI = %d, want %d", vci, DefaultVCI+3)
	}
	first := f.routes[flowKey{0, 3}]
	if len(first.hops) != 3 {
		t.Fatalf("cross-leaf route has %d hops, want 3", len(first.hops))
	}
	trunk1, trunk2 := first.hops[1].vci, first.hops[2].vci

	// Simulate receive-side state so teardown has something to drop.
	drvs[3].reasmFor(first.rxVCI)

	f.teardown(0, 4)
	if f.NumRoutes() != 0 || f.TotalVCs() != 0 {
		t.Fatalf("teardown left %d routes, %d VC entries", f.NumRoutes(), f.TotalVCs())
	}
	if drvs[3].NumReassemblers() != 0 {
		t.Fatal("teardown did not reclaim the destination reassembler")
	}

	if _, ok := f.setup(0, 4); !ok {
		t.Fatal("re-setup failed")
	}
	second := f.routes[flowKey{0, 3}]
	if second.hops[1].vci != trunk1 || second.hops[2].vci != trunk2 {
		t.Fatalf("trunk VCIs not recycled: first (%d,%d), second (%d,%d)",
			trunk1, trunk2, second.hops[1].vci, second.hops[2].vci)
	}
}

// TestDriverTxVCLimitEvictsLRU pins bounded-peer-state reclamation: with
// TxVCLimit set, installing a VC past the limit evicts the
// least-recently-used entry and tears its fabric path down, so a host
// that cycles through many peers holds O(limit) transmit state.
func TestDriverTxVCLimitEvictsLRU(t *testing.T) {
	env := sim.NewEnv()
	f, _, _, drvs, _ := buildFabric(t, env, FabricHub, 0, 5)
	d := drvs[0]
	d.TxVCLimit = 2

	d.segFor(10, 2) // dst host 1
	d.segFor(20, 3) // dst host 2
	d.segFor(30, 2) // touch host 1: host 2 is now LRU
	d.segFor(40, 4) // dst host 3: must evict host 2

	if got := d.NumTxVCs(); got != 2 {
		t.Fatalf("driver holds %d tx VCs, want TxVCLimit=2", got)
	}
	if _, evicted := d.vcs[3]; evicted {
		t.Fatal("LRU entry (dst 3) survived eviction")
	}
	if _, kept := d.vcs[2]; !kept {
		t.Fatal("recently used entry (dst 2) was evicted")
	}
	// The fabric path went with it: routes for hosts 1 and 3 remain.
	if f.NumRoutes() != 2 || f.Core.NumVCs() != 2 {
		t.Fatalf("fabric holds %d routes, %d switch VCs after eviction; want 2, 2",
			f.NumRoutes(), f.Core.NumVCs())
	}

	// Re-sending to the evicted peer reinstalls transparently.
	if s := d.segFor(50, 3); s.VCI != DefaultVCI+2 {
		t.Fatalf("reinstalled VC carries VCI %d, want %d", s.VCI, DefaultVCI+2)
	}
}

// TestDropRxKeepsActiveReassembly: reclamation must refuse to discard a
// datagram mid-reassembly.
func TestDropRxKeepsActiveReassembly(t *testing.T) {
	d := &Driver{}
	r := d.reasmFor(40)

	var seg Segmenter
	seg.VCI = 40
	cells := seg.Segment(make([]byte, 200)) // multi-cell datagram
	if _, err := r.Push(&cells[0]); err != nil {
		t.Fatal(err)
	}
	if d.DropRx(40) {
		t.Fatal("DropRx discarded a mid-reassembly channel")
	}
	for i := 1; i < len(cells); i++ {
		if _, err := r.Push(&cells[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !d.DropRx(40) {
		t.Fatal("DropRx refused an idle channel")
	}
	if d.NumReassemblers() != 0 {
		t.Fatal("reassembler survived DropRx")
	}
}
