// Command load drives N-host topologies with the pluggable workload
// engine: request/response fan-in (M clients hammering one server),
// connection churn (open/close storms exercising real PCB insert and
// delete), one-way bulk transfer, and the paper's echo benchmark. Trials
// shard across the sweep-engine worker pool with grid-position-derived
// seeds, so output is bit-identical at any -parallel level.
//
// Examples:
//
//	load -workload fanin -hosts 17 -reqs 20       # 16 clients -> 1 server
//	load -workload fanin -hosts 17 -compare       # list vs hash PCBs
//	load -workload churn -hosts 9 -conns 25       # open/close storms
//	load -workload bulk -hosts 5 -bytes 262144    # concurrent bulk fan-in
//	load -workload fanin -trials 8 -loss 0.0005 -parallel 4  # repetitions under loss
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/lab"
	"repro/internal/runner"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "load:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("load", flag.ContinueOnError)
	var (
		wl       = fs.String("workload", "fanin", "workload: fanin, churn, bulk, or echo")
		hosts    = fs.Int("hosts", 5, "topology size: one server plus hosts-1 clients")
		conns    = fs.Int("conns", 10, "churn: connection cycles per client")
		reqs     = fs.Int("reqs", 20, "fanin: requests per client; echo: iterations")
		size     = fs.Int("size", 0, "payload bytes per operation (0 = workload default)")
		bytesN   = fs.Int("bytes", 65536, "bulk: bytes streamed per client")
		link     = fs.String("link", "atm", "link type: atm or ether")
		loss     = fs.Float64("loss", 0, "ATM cell loss probability (what makes -trials vary)")
		hash     = fs.Bool("hashpcb", false, "use the hash-table PCB organization")
		compare  = fs.Bool("compare", false, "run every trial under both PCB organizations")
		trials   = fs.Int("trials", 1, "seeded repetitions of the workload")
		parallel = fs.Int("parallel", 0, "sweep workers (0 = GOMAXPROCS, 1 = serial)")
		seed     = fs.Uint64("seed", 0, "base seed for per-trial RNG derivation (0 with -trials > 1 uses base 1)")
		jsonOut  = fs.Bool("json", false, "emit results as JSON instead of text")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return err
	}

	if *hosts < 2 {
		return fmt.Errorf("-hosts %d too small (need a server and at least one client)", *hosts)
	}
	if *trials < 1 {
		return fmt.Errorf("-trials must be >= 1")
	}
	if *loss < 0 || *loss >= 1 {
		return fmt.Errorf("-loss %g out of range [0, 1)", *loss)
	}
	cfg := lab.Config{HashPCBs: *hash, CellLossRate: *loss}
	switch *link {
	case "atm":
		cfg.Link = lab.LinkATM
	case "ether":
		cfg.Link = lab.LinkEther
		// Config.CellLossRate only drives ATM adapters; accepting it
		// here would silently measure a loss-free segment.
		if *loss > 0 {
			return fmt.Errorf("-loss applies to the ATM link only")
		}
	default:
		return fmt.Errorf("unknown link %q", *link)
	}

	gen, err := makeGenerator(*wl, *size, *reqs, *conns, *bytesN)
	if err != nil {
		return err
	}

	orgs := []bool{*hash}
	if *compare {
		orgs = []bool{false, true}
	}
	var ts []runner.WorkloadTrial
	for t := 0; t < *trials; t++ {
		for _, h := range orgs {
			c := cfg
			c.HashPCBs = h
			org := "list"
			if h {
				org = "hash"
			}
			label := fmt.Sprintf("%s/%dc/%s", *wl, *hosts-1, org)
			if *trials > 1 {
				label += fmt.Sprintf("/t%d", t)
			}
			ts = append(ts, runner.WorkloadTrial{Label: label, Cfg: c, Hosts: *hosts, Gen: gen})
		}
	}

	// Without a base seed every trial's simulation would use the fixed
	// default seed and -trials would produce identical repetitions;
	// derive from base 1 so repetitions actually vary (still fully
	// deterministic).
	base := *seed
	if base == 0 && *trials > 1 {
		base = 1
	}
	outs, err := runner.RunWorkloadSweep(context.Background(), ts,
		runner.Options{Workers: *parallel, BaseSeed: base})
	if err != nil {
		return err
	}
	for _, o := range outs {
		if o.Error != "" {
			return fmt.Errorf("trial %s: %s", o.Label, o.Error)
		}
	}

	if *jsonOut {
		b, err := json.MarshalIndent(outs, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintln(w, string(b))
		return nil
	}
	title := fmt.Sprintf("Workload %s: %d host(s), %d trial(s)", *wl, *hosts, len(ts))
	fmt.Fprint(w, runner.RenderWorkloadOutcomes(title, outs))
	return nil
}

// makeGenerator builds the named workload from the command-line knobs.
func makeGenerator(name string, size, reqs, conns, bytes int) (workload.Generator, error) {
	switch name {
	case "fanin":
		return workload.FanIn{Size: size, Requests: reqs, Warmup: 2}, nil
	case "churn":
		return workload.Churn{Conns: conns, Size: size}, nil
	case "bulk":
		return workload.Bulk{Bytes: bytes}, nil
	case "echo":
		return workload.Echo{Size: size, Iterations: reqs}, nil
	}
	return nil, fmt.Errorf("unknown workload %q (want fanin, churn, bulk, or echo)", name)
}
