// Package udp implements a UDP layer on the simulated stack. The paper
// leans on UDP context twice: §4.2 opens from the observation that "it is
// already common practice to eliminate the UDP checksum for local area
// NFS traffic" (UDP's checksum has been optional since RFC 768 — a zero
// checksum field means "not computed"), and the Digital OSF comparison in
// §4.1.1 concerns a combined copy-and-checksum on the UDP receive path.
//
// Having UDP in the testbed also answers the question the paper's
// introduction poses — "can we provide evidence that TCP is a viable
// option for a transport layer for RPC?" — by providing the datagram
// baseline an RPC system would otherwise use; the extension experiment in
// internal/core compares echo latency over both transports.
package udp

import (
	"fmt"

	"repro/internal/checksum"
	"repro/internal/ip"
	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/sim"
	"repro/internal/trace"
)

// HeaderLen is the UDP header length.
const HeaderLen = 8

// ProtoUDP is the IPv4 protocol number for UDP.
const ProtoUDP = 17

// Header is a parsed UDP header.
type Header struct {
	SrcPort, DstPort uint16
	Length           int // header + payload
	Cksum            uint16
}

// Marshal encodes the header with a zero checksum field.
func (h *Header) Marshal(b []byte) {
	b[0] = byte(h.SrcPort >> 8)
	b[1] = byte(h.SrcPort)
	b[2] = byte(h.DstPort >> 8)
	b[3] = byte(h.DstPort)
	b[4] = byte(h.Length >> 8)
	b[5] = byte(h.Length)
	b[6], b[7] = 0, 0
}

// ParseHeader decodes a header from b.
func ParseHeader(b []byte) (Header, error) {
	var h Header
	if len(b) < HeaderLen {
		return h, fmt.Errorf("udp: short header (%d bytes)", len(b))
	}
	h.SrcPort = uint16(b[0])<<8 | uint16(b[1])
	h.DstPort = uint16(b[2])<<8 | uint16(b[3])
	h.Length = int(b[4])<<8 | int(b[5])
	h.Cksum = uint16(b[6])<<8 | uint16(b[7])
	return h, nil
}

// Datagram is one received datagram.
type Datagram struct {
	Src     uint32
	SrcPort uint16
	Data    []byte
}

// Endpoint is a bound UDP port: a receive queue plus send capability.
type Endpoint struct {
	s    *Stack
	port uint16
	q    []Datagram
	wq   *sim.WaitQueue

	// Cached frames for the endpoint's send and receive paths; one of
	// each is in flight at a time in the steady state.
	sendOp *SendToOp
	recvOp *RecvFromOp
}

// Stack is one host's UDP layer. It implements ip.Handler.
type Stack struct {
	K  *kern.Kernel
	IP *ip.Stack

	// ChecksumOff sends datagrams with a zero (absent) checksum, the
	// local-area NFS configuration. Reception always honours the wire:
	// a zero checksum field is accepted unverified, a nonzero one is
	// verified (RFC 768 semantics).
	ChecksumOff bool

	ports    map[uint16]*Endpoint
	nextPort uint16

	// inOp caches the ip.Handler input frame (one datagram is processed
	// at a time per host).
	inOp *inputOp

	// Stats.
	DatagramsIn    int64
	DatagramsOut   int64
	ChecksumErrors int64
	NoPortDrops    int64
}

// NewStack creates the UDP layer and registers it with IP.
func NewStack(k *kern.Kernel, ipStack *ip.Stack) *Stack {
	s := &Stack{K: k, IP: ipStack, ports: make(map[uint16]*Endpoint), nextPort: 2048}
	ipStack.Register(ProtoUDP, s)
	return s
}

// Reset returns the stack to its just-constructed state for testbed
// reuse: bound ports released, the ephemeral port counter rewound, the
// checksum policy back to default, statistics cleared. The IP
// registration survives — it is part of the topology.
func (s *Stack) Reset() {
	clear(s.ports)
	s.nextPort = 2048
	s.ChecksumOff = false
	s.DatagramsIn, s.DatagramsOut, s.ChecksumErrors, s.NoPortDrops = 0, 0, 0, 0
}

// Bind claims a port (0 means an ephemeral one) and returns its endpoint.
func (s *Stack) Bind(port uint16) (*Endpoint, error) {
	if port == 0 {
		s.nextPort++
		port = s.nextPort
	}
	if _, busy := s.ports[port]; busy {
		return nil, fmt.Errorf("udp: port %d in use", port)
	}
	e := &Endpoint{
		s:    s,
		port: port,
		wq:   s.K.Env.NewWaitQueue(fmt.Sprintf("%s.udp:%d", s.K.Name, port)),
	}
	s.ports[port] = e
	return e, nil
}

// Port returns the endpoint's bound port.
func (e *Endpoint) Port() uint16 { return e.port }

// Close releases the endpoint's port binding and discards queued
// datagrams, so the port can be bound again (a crashed server's restart
// re-Listens on the same port). Parked receivers are not woken — a
// closed endpoint's service process simply never runs again — and later
// arrivals for the port drop like any unbound port's.
func (e *Endpoint) Close() {
	delete(e.s.ports, e.port)
	e.q = nil
}

// SendTo transmits one datagram as a frame call (tail position). The
// cost structure mirrors the TCP output path minus connection state:
// syscall + copyin under the User row, checksum under TCP.checksum (the
// paper's tables use that row for transport checksums generally), and a
// light protocol-processing charge.
func (e *Endpoint) SendTo(p *sim.Proc, dst uint32, dstPort uint16, data []byte) {
	f := e.sendOp
	if f != nil {
		e.sendOp = nil
	} else {
		f = &SendToOp{e: e}
	}
	f.pc = 0
	f.dst, f.dstPort = dst, dstPort
	f.data, f.rest = data, data
	f.useClusters = len(data) > mbuf.ClusterThreshold
	p.Call(f)
}

// SendToOp is the frame behind Endpoint.SendTo: the write() entry, the
// copyin loop (same mbuf sizing policy as sosend), the header build, the
// optional checksum, and the hand-off to IP.
type SendToOp struct {
	e  *Endpoint
	pc int

	dst         uint32
	dstPort     uint16
	data, rest  []byte
	useClusters bool

	chain, tail *mbuf.Mbuf
	curM, hm    *mbuf.Mbuf
	curN        int
	length      int // header + payload
}

// allocCost returns the charge for the next payload mbuf.
func (f *SendToOp) allocCost() sim.Time {
	if f.useClusters {
		return f.e.s.K.Cost.ClusterAlloc
	}
	return f.e.s.K.Cost.MbufAlloc
}

// Step drives the datagram-send state machine.
func (f *SendToOp) Step(p *sim.Proc) {
	e := f.e
	k := e.s.K
	for {
		switch f.pc {
		case 0: // write() entry
			f.pc = 1
			if !k.Use(p, trace.LayerUserTx, k.Cost.WriteSyscall) {
				return
			}
		case 1: // first payload mbuf (even a zero-length datagram gets one)
			f.pc = 2
			if !k.Use(p, trace.LayerUserTx, f.allocCost()) {
				return
			}
		case 2: // allocate, fill, charge the copyin
			var m *mbuf.Mbuf
			if f.useClusters {
				m = k.Pool.AllocCluster()
			} else {
				m = k.Pool.Alloc()
			}
			f.curM = m
			f.curN = m.Append(f.rest)
			f.rest = f.rest[f.curN:]
			f.pc = 3
			if !k.Use(p, trace.LayerUserTx,
				k.Cost.CopyinFixed+sim.Time(k.Cost.CopyinPerByte*float64(f.curN))) {
				return
			}
		case 3: // link the filled mbuf; loop or move to the header
			if f.chain == nil {
				f.chain = f.curM
			} else {
				f.tail.SetNext(f.curM)
			}
			f.tail = f.curM
			if len(f.rest) > 0 {
				f.pc = 2
				if !k.Use(p, trace.LayerUserTx, f.allocCost()) {
					return
				}
			} else {
				f.pc = 4
				if !k.Use(p, trace.LayerTCPSegmentTx, k.Cost.MbufAlloc) {
					return
				}
			}
		case 4: // header mbuf + protocol-processing charge
			f.hm = k.Pool.Alloc()
			f.length = HeaderLen + len(f.data)
			h := Header{SrcPort: e.port, DstPort: f.dstPort, Length: f.length}
			var hdr [HeaderLen]byte
			h.Marshal(hdr[:])
			f.hm.Append(hdr[:])
			f.hm.SetNext(f.chain)
			f.pc = 5
			if !k.Use(p, trace.LayerTCPSegmentTx,
				k.Cost.UsrreqDispatch+k.Cost.TCPOutputSegment.Fixed/2) {
				return
			}
		case 5: // optional checksum charge
			if e.s.ChecksumOff {
				f.pc = 7
				continue
			}
			nm := mbuf.ChainCount(f.hm)
			f.pc = 6
			if !k.Use(p, trace.LayerTCPCksumTx,
				k.Cost.TCPKernelChecksum.Cost(f.length)+sim.Time(nm)*k.Cost.TCPCksumPerMbuf) {
				return
			}
		case 6: // checksum over real bytes
			ps := udpPseudo(e.s.IP.Addr, f.dst, f.length)
			for m := f.hm; m != nil; m = m.Next() {
				ps.Add(m.Bytes())
			}
			ck := ps.Checksum()
			if ck == 0 {
				ck = 0xffff // RFC 768: transmitted as all ones
			}
			b := f.hm.Bytes()
			b[6] = byte(ck >> 8)
			b[7] = byte(ck)
			f.pc = 7
		case 7: // hand off to IP (tail call)
			e.s.DatagramsOut++
			f.pc = 8
			e.s.IP.Output(p, f.dst, ProtoUDP, f.hm)
			return
		case 8: // done
			f.data, f.rest = nil, nil
			f.chain, f.tail, f.curM, f.hm = nil, nil, nil, nil
			if e.sendOp == nil {
				e.sendOp = f
			}
			p.Return()
			return
		}
	}
}

// RecvFrom blocks until a datagram arrives. The call must be in tail
// position; once the caller re-enters, the returned op's D field holds
// the datagram.
func (e *Endpoint) RecvFrom(p *sim.Proc) *RecvFromOp {
	f := e.recvOp
	if f != nil {
		e.recvOp = nil
	} else {
		f = &RecvFromOp{e: e}
	}
	f.pc = 0
	f.D = Datagram{}
	p.Call(f)
	return f
}

// RecvFromOp is the frame behind Endpoint.RecvFrom.
type RecvFromOp struct {
	e  *Endpoint
	pc int

	// D is the received datagram, valid once the frame returns.
	D Datagram
}

// Step drives the datagram-receive state machine.
func (f *RecvFromOp) Step(p *sim.Proc) {
	e := f.e
	k := e.s.K
	for {
		switch f.pc {
		case 0: // wait for a datagram
			if len(e.q) == 0 {
				k.SleepOn(p, e.wq)
				return
			}
			f.pc = 1
			if !k.Use(p, trace.LayerUserRx, k.Cost.ReadSyscall) {
				return
			}
		case 1: // dequeue and charge the copyout
			f.D = e.q[0]
			copy(e.q, e.q[1:])
			e.q = e.q[:len(e.q)-1]
			f.pc = 2
			if !k.Use(p, trace.LayerUserRx,
				k.Cost.CopyoutFixed+sim.Time(k.Cost.CopyoutPerByte*float64(len(f.D.Data)))) {
				return
			}
		case 2: // done
			if e.recvOp == nil {
				e.recvOp = f
			}
			p.Return()
			return
		}
	}
}

// Pending returns the number of queued datagrams.
func (e *Endpoint) Pending() int { return len(e.q) }

// Input implements ip.Handler as a frame call.
func (s *Stack) Input(p *sim.Proc, h ip.Header, m *mbuf.Mbuf) {
	f := s.inOp
	if f != nil {
		s.inOp = nil
	} else {
		f = &inputOp{s: s}
	}
	f.pc = 0
	f.h, f.m = h, m
	p.Call(f)
}

// inputOp is the frame behind Stack.Input: parse checks (free of charge,
// as in the original), the protocol-processing charge, the optional
// checksum verification, and delivery to the bound port. The datagram
// chain is freed on every exit path.
type inputOp struct {
	s  *Stack
	pc int

	h  ip.Header
	m  *mbuf.Mbuf
	uh Header
}

// Step drives the datagram-input state machine.
func (f *inputOp) Step(p *sim.Proc) {
	s := f.s
	k := s.K
	for {
		switch f.pc {
		case 0: // parse and sanity-check, then charge protocol processing
			var raw [HeaderLen]byte
			if mbuf.CopyBytesTo(f.m, 0, HeaderLen, raw[:]) != HeaderLen {
				f.pc = 4
				continue
			}
			uh, err := ParseHeader(raw[:])
			if err != nil || uh.Length != mbuf.ChainLen(f.m) {
				f.pc = 4
				continue
			}
			f.uh = uh
			f.pc = 1
			if !k.Use(p, trace.LayerTCPSegmentRx, k.Cost.TCPInputFast) {
				return
			}
		case 1: // a nonzero checksum field must verify (RFC 768)
			if f.uh.Cksum == 0 {
				f.pc = 3
				continue
			}
			nm := mbuf.ChainCount(f.m)
			f.pc = 2
			if !k.Use(p, trace.LayerTCPCksumRx,
				k.Cost.TCPKernelChecksum.Cost(f.uh.Length)+sim.Time(nm)*k.Cost.TCPCksumPerMbuf) {
				return
			}
		case 2: // verify the sum
			ps := udpPseudo(f.h.Src, f.h.Dst, f.uh.Length)
			for c := f.m; c != nil; c = c.Next() {
				ps.Add(c.Bytes())
			}
			if ps.Sum16() != 0xffff {
				s.ChecksumErrors++
				f.pc = 4
				continue
			}
			f.pc = 3
		case 3: // deliver to the bound port
			ep, ok := s.ports[f.uh.DstPort]
			if !ok {
				s.NoPortDrops++
				f.pc = 4
				continue
			}
			data := make([]byte, f.uh.Length-HeaderLen)
			mbuf.CopyBytesTo(f.m, HeaderLen, len(data), data)
			s.DatagramsIn++
			ep.q = append(ep.q, Datagram{Src: f.h.Src, SrcPort: f.uh.SrcPort, Data: data})
			ep.wq.WakeAll()
			f.pc = 4
		case 4: // free the chain and pop
			k.Pool.Free(f.m)
			f.m = nil
			if s.inOp == nil {
				s.inOp = f
			}
			p.Return()
			return
		}
	}
}

// udpPseudo primes a partial sum with the UDP pseudo-header.
func udpPseudo(src, dst uint32, length int) checksum.Partial {
	var p checksum.Partial
	p.AddWord(uint16(src >> 16))
	p.AddWord(uint16(src))
	p.AddWord(uint16(dst >> 16))
	p.AddWord(uint16(dst))
	p.AddWord(ProtoUDP)
	p.AddWord(uint16(length))
	return p
}
