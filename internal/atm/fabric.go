package atm

import (
	"fmt"
	"sort"

	"repro/internal/cost"
	"repro/internal/sim"
)

// Routed fabrics: multi-switch ATM topologies with on-demand VC setup.
//
// The paper's testbed is two hosts on one fiber; scaling its workloads to
// thousands of hosts needs a switched fabric, and building that fabric
// eagerly costs O(hosts²) VC state — the reason large topologies used to
// exhaust memory before simulating a single cell. A Fabric instead keeps
// only a routing view of the topology (which switch and port each host
// sits on) and installs a flow's VC path through the switches the first
// time a datagram heads to that destination, via the driver's SetupVC
// hook. Signaling is modeled as instantaneous, so the lazily built
// fabric is event-for-event identical to an eagerly meshed one; what
// changes is that memory follows *active* communication pairs.

// FabricKind selects the switch arrangement of a routed fabric.
type FabricKind int

const (
	// FabricHub is a single switch with every host attached — the
	// classic hub-and-spoke building network, and the shape whose
	// single-switch behaviour must stay bit-identical to the old eager
	// mesh.
	FabricHub FabricKind = iota
	// FabricFatTree is a two-level tree: hosts attach to leaf switches
	// (LeafPorts per leaf), and every leaf trunks to one spine switch.
	// Cross-leaf flows traverse leaf → spine → leaf and contend for the
	// trunk links, as in a building backbone.
	FabricFatTree
)

// String names the fabric kind for labels and errors.
func (k FabricKind) String() string {
	switch k {
	case FabricHub:
		return "hub"
	case FabricFatTree:
		return "fattree"
	default:
		return fmt.Sprintf("FabricKind(%d)", int(k))
	}
}

// DefaultLeafPorts is the fat-tree hosts-per-leaf when the caller does
// not choose one: the port count of a mid-90s workgroup ATM switch.
const DefaultLeafPorts = 64

// flowKey identifies a unidirectional host-to-host flow by host index.
type flowKey struct{ src, dst int }

// hop is one switch VC entry on a flow's path, with the allocator to
// refund when the path is torn down (nil for fixed host-link VCIs).
type hop struct {
	sw    *Switch
	port  int
	vci   uint16
	alloc *vciAlloc
}

// route is an installed flow path: the VCI the source host transmits on,
// the VCI the destination host receives on (naming the source, as the
// legacy mesh did), and the switch entries in path order.
type route struct {
	txVCI uint16
	rxVCI uint16
	hops  []hop
}

// fabricHost locates one host in the fabric.
type fabricHost struct {
	drv  *Driver
	sw   *Switch
	leaf int // leaf index, or -1 on a hub
	port int // host's port on sw
}

// Fabric is a routed multi-switch topology over a set of host drivers.
// It owns the switches, knows where every host attaches, and serves the
// drivers' SetupVC/TeardownVC hooks: VC paths through the switches exist
// only for flows that have actually carried traffic.
type Fabric struct {
	Kind FabricKind
	// Core is the single switch of a hub fabric or the spine of a
	// fat tree; Leaves are the fat tree's leaf switches (nil for a hub).
	Core   *Switch
	Leaves []*Switch

	hosts  []fabricHost
	byAddr map[uint32]int

	// leafUp[i] is leaf i's trunk port toward the spine; coreDown[i] is
	// the spine's port toward leaf i.
	leafUp   []int
	coreDown []int

	// routes remembers every installed flow path. It survives testbed
	// Reset — routing is topology once installed — which makes setup
	// idempotent: a driver whose on-demand transmit state was dropped by
	// Reset re-requests the path and gets the existing one back, with no
	// switch-table or VCI-allocator churn.
	routes map[flowKey]*route

	// plan and shardRoutes are set by NewShardedFabric: the shard wiring,
	// and the route memory partitioned by the *source* host's shard so
	// that concurrent shards never touch one map. setUps counts path
	// installs per shard for the same reason.
	plan        *ShardPlan
	shardRoutes []map[flowKey]*route
	setUps      []int64

	// VCsSetUp and VCsTornDown count path installs and reclaims.
	// (Serial fabrics only; sharded fabrics count installs in setUps.)
	VCsSetUp    int64
	VCsTornDown int64
}

// NewFabric builds the switches for kind, attaches every driver's
// adapter, and wires the drivers' on-demand VC hooks. leafPorts only
// matters for FabricFatTree; zero means DefaultLeafPorts. The model
// prices the trunk links (host links are priced by each adapter's own
// cost model, as always).
func NewFabric(env *sim.Env, kind FabricKind, model *cost.Model, leafPorts int, drvs []*Driver) *Fabric {
	f := &Fabric{
		Kind:   kind,
		hosts:  make([]fabricHost, len(drvs)),
		byAddr: make(map[uint32]int, len(drvs)),
		routes: make(map[flowKey]*route),
	}
	switch kind {
	case FabricHub:
		f.Core = NewSwitch(env)
		for i, d := range drvs {
			port := f.Core.AttachPort(d.Adapter)
			f.hosts[i] = fabricHost{drv: d, sw: f.Core, leaf: -1, port: port}
		}
	case FabricFatTree:
		if leafPorts <= 0 {
			leafPorts = DefaultLeafPorts
		}
		f.Core = NewSwitch(env)
		nLeaves := (len(drvs) + leafPorts - 1) / leafPorts
		f.Leaves = make([]*Switch, nLeaves)
		f.leafUp = make([]int, nLeaves)
		f.coreDown = make([]int, nLeaves)
		for li := range f.Leaves {
			leaf := NewSwitch(env)
			f.Leaves[li] = leaf
			for i := li * leafPorts; i < (li+1)*leafPorts && i < len(drvs); i++ {
				port := leaf.AttachPort(drvs[i].Adapter)
				f.hosts[i] = fabricHost{drv: drvs[i], sw: leaf, leaf: li, port: port}
			}
			f.leafUp[li], f.coreDown[li] = ConnectTrunk(leaf, f.Core, model)
		}
	default:
		panic(fmt.Sprintf("atm: unknown fabric kind %d", int(kind)))
	}
	for i, d := range drvs {
		i := i // pre-1.22 loop-variable capture
		f.byAddr[d.IP.Addr] = i
		d.SetupVC = func(dst uint32) (uint16, bool) { return f.setup(i, dst) }
		d.TeardownVC = func(dst uint32) { f.teardown(i, dst) }
	}
	return f
}

// NumHosts returns how many hosts the fabric serves.
func (f *Fabric) NumHosts() int { return len(f.hosts) }

// NumRoutes returns how many flow paths are currently installed — the
// fabric-wide measure of active communication pairs.
func (f *Fabric) NumRoutes() int {
	if f.plan != nil {
		n := 0
		for _, rm := range f.shardRoutes {
			n += len(rm)
		}
		return n
	}
	return len(f.routes)
}

// TotalVCs sums the VC table entries across every switch in the fabric.
func (f *Fabric) TotalVCs() int {
	n := f.Core.NumVCs()
	for _, leaf := range f.Leaves {
		n += leaf.NumVCs()
	}
	return n
}

// Reset rewinds every switch for testbed reuse. Installed routes
// survive (see the routes field).
func (f *Fabric) Reset() {
	f.Core.Reset()
	for _, leaf := range f.Leaves {
		leaf.Reset()
	}
	f.VCsSetUp, f.VCsTornDown = 0, 0
	for s := range f.setUps {
		f.setUps[s] = 0
	}
}

// setup installs (or finds) the VC path from host src to the host owning
// dstAddr and returns the VCI src transmits on. Host-facing links keep
// the legacy source-naming convention — src transmits on DefaultVCI+dst,
// the destination receives on DefaultVCI+src — so a hub fabric's wire
// bytes are byte-identical to the old eager mesh. Trunk hops use
// per-link allocated VCIs, invisible to hosts.
func (f *Fabric) setup(src int, dstAddr uint32) (uint16, bool) {
	dst, ok := f.byAddr[dstAddr]
	if !ok || dst == src {
		return 0, false
	}
	key := flowKey{src, dst}
	if rt, ok := f.routes[key]; ok {
		return rt.txVCI, true
	}
	hs, hd := &f.hosts[src], &f.hosts[dst]
	rt := &route{
		txVCI: DefaultVCI + uint16(dst),
		rxVCI: DefaultVCI + uint16(src),
	}
	if hs.sw == hd.sw {
		// Same switch (hub, or two hosts on one leaf): a single entry.
		hs.sw.AddVC(hs.port, rt.txVCI, hd.port, rt.rxVCI)
		rt.hops = []hop{{sw: hs.sw, port: hs.port, vci: rt.txVCI}}
	} else {
		// Cross-leaf: leaf(src) → spine → leaf(dst), one allocated VCI
		// per trunk hop (the reassembler demultiplexes on VCI alone, so
		// flows sharing a trunk cannot share one).
		up, down := f.leafUp[hs.leaf], f.coreDown[hd.leaf]
		upAlloc := hs.sw.ports[up].vci
		downAlloc := f.Core.ports[down].vci
		v1 := upAlloc.get()
		v2 := downAlloc.get()
		hs.sw.AddVC(hs.port, rt.txVCI, up, v1)
		f.Core.AddVC(f.coreDown[hs.leaf], v1, down, v2)
		hd.sw.AddVC(f.leafUp[hd.leaf], v2, hd.port, rt.rxVCI)
		rt.hops = []hop{
			{sw: hs.sw, port: hs.port, vci: rt.txVCI},
			{sw: f.Core, port: f.coreDown[hs.leaf], vci: v1, alloc: upAlloc},
			{sw: hd.sw, port: f.leafUp[hd.leaf], vci: v2, alloc: downAlloc},
		}
	}
	f.routes[key] = rt
	f.VCsSetUp++
	return rt.txVCI, true
}

// teardown removes the flow path from host src to the host owning
// dstAddr: every switch entry goes away, trunk VCIs return to their
// links' pools, and the destination's reassembly context is reclaimed
// (unless a datagram is mid-flight on it, in which case the context
// stays until the channel is next reclaimed). Cells still crossing the
// fabric on the torn-down path are discarded as unrouted — reclamation
// under TxVCLimit is deliberately the behaviour of a real switched
// network reprovisioning a channel, and transports recover by
// retransmitting (which re-installs the path).
func (f *Fabric) teardown(src int, dstAddr uint32) {
	dst, ok := f.byAddr[dstAddr]
	if !ok {
		return
	}
	key := flowKey{src, dst}
	rt, ok := f.routes[key]
	if !ok {
		return
	}
	f.removeRoute(key, rt)
}

// removeRoute is teardown's working half, shared with port-failure
// reclamation: remove every switch entry, refund trunk VCIs, reclaim the
// destination's reassembly context, forget the route.
func (f *Fabric) removeRoute(key flowKey, rt *route) {
	for _, h := range rt.hops {
		h.sw.RemoveVC(h.port, h.vci)
		if h.alloc != nil {
			h.alloc.put(h.vci)
		}
	}
	f.hosts[key.dst].drv.DropRx(rt.rxVCI)
	delete(f.routes, key)
	f.VCsTornDown++
}

// HostPort returns host i's access port on its switch (the hub core or
// its fat-tree leaf).
func (f *Fabric) HostPort(i int) *Port {
	h := &f.hosts[i]
	return h.sw.ports[h.port]
}

// FailHostPort fails host i's switch access port (fault injection): the
// port goes down, and every installed VC path with i as source or
// destination is torn down — switch entries removed, trunk VCIs
// refunded — exactly as idle-VC reclamation would. Peers recover through
// the same on-demand machinery: their next retransmission re-requests
// the path via SetupVC and gets a fresh install once the port is
// restored. Serial fabrics only; sharded runs reject non-shard-safe
// fault kinds at scheduling.
func (f *Fabric) FailHostPort(i int) {
	if f.plan != nil {
		panic(fmt.Sprintf("atm: FailHostPort(%d) on a sharded fabric", i))
	}
	f.HostPort(i).SetDown(true)
	keys := make([]flowKey, 0, 8)
	for k := range f.routes {
		if k.src == i || k.dst == i {
			keys = append(keys, k)
		}
	}
	// Map iteration order is random; reclaim in canonical order so VCI
	// pool refunds (and thus later allocations) stay deterministic.
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].src != keys[b].src {
			return keys[a].src < keys[b].src
		}
		return keys[a].dst < keys[b].dst
	})
	for _, k := range keys {
		f.removeRoute(k, f.routes[k])
	}
}

// RestoreHostPort brings a failed access port back; torn-down paths
// reinstall on demand when traffic next flows.
func (f *Fabric) RestoreHostPort(i int) {
	f.HostPort(i).SetDown(false)
}

// CellDest is a shard-boundary delivery target — the far end of a cut
// fiber. The cluster coordinator injects each staged cell into the
// destination shard through it at the staged arrival time.
type CellDest interface{ InjectCell(c Cell) }

// ShardPlan wires a fabric across shard boundaries for deterministic
// parallel execution (lab.Cluster). Fibers whose two ends land in
// different shards are cut: the sending side stages each cell with the
// coordinator instead of delivering it, and VC-table installs that touch
// switches outside the calling host's shard are staged as control
// mutations the coordinator applies at the next round barrier — before
// any staged cell, and strictly before the first data cell of the flow
// can cross the cut (the cut itself delays that cell by at least the
// lookahead, so the install is always in place first).
type ShardPlan struct {
	// Envs[s] is shard s's event loop. Shard 0 also hosts the core
	// switch (hub or spine).
	Envs []*sim.Env
	// HostShard[i] is the shard of host i. For a fat tree the partition
	// must be leaf-aligned: every host of one leaf in one shard.
	HostShard []int
	// StageCell stages one cell crossing from srcShard to dstShard.
	// scheduleAt is when the serial run would have created the arrival
	// event (egress engine completion) — the coordinator's canonical
	// ordering key — and at is the far-end arrival time.
	StageCell func(srcShard, dstShard int, scheduleAt, at sim.Time, to CellDest, c Cell)
	// StageCtl stages a control mutation for the coordinator to apply at
	// the next round barrier, before any staged cell is injected.
	StageCtl func(srcShard int, apply func())
}

// NewShardedFabric builds the same switches and routing view as
// NewFabric, but spread across the plan's per-shard environments: the
// core (hub or spine) lives in shard 0's environment, each fat-tree leaf
// in its hosts' shard, and every fiber crossing a shard boundary is cut
// (see ShardPlan). With one shard it degenerates to NewFabric exactly —
// same switches, same wiring, no cuts.
func NewShardedFabric(plan *ShardPlan, kind FabricKind, model *cost.Model, leafPorts int, drvs []*Driver) *Fabric {
	f := &Fabric{
		Kind:   kind,
		hosts:  make([]fabricHost, len(drvs)),
		byAddr: make(map[uint32]int, len(drvs)),
		plan:   plan,
	}
	f.shardRoutes = make([]map[flowKey]*route, len(plan.Envs))
	for s := range f.shardRoutes {
		f.shardRoutes[s] = make(map[flowKey]*route)
	}
	f.setUps = make([]int64, len(plan.Envs))
	switch kind {
	case FabricHub:
		f.Core = NewSwitch(plan.Envs[0])
		for i, d := range drvs {
			port := f.Core.AttachPort(d.Adapter)
			f.hosts[i] = fabricHost{drv: d, sw: f.Core, leaf: -1, port: port}
			if s := plan.HostShard[i]; s != 0 {
				cutHostLink(plan, s, d.Adapter, f.Core.ports[port])
			}
		}
	case FabricFatTree:
		if leafPorts <= 0 {
			leafPorts = DefaultLeafPorts
		}
		f.Core = NewSwitch(plan.Envs[0])
		nLeaves := (len(drvs) + leafPorts - 1) / leafPorts
		f.Leaves = make([]*Switch, nLeaves)
		f.leafUp = make([]int, nLeaves)
		f.coreDown = make([]int, nLeaves)
		for li := range f.Leaves {
			ls := plan.HostShard[li*leafPorts]
			leaf := NewSwitch(plan.Envs[ls])
			f.Leaves[li] = leaf
			for i := li * leafPorts; i < (li+1)*leafPorts && i < len(drvs); i++ {
				if plan.HostShard[i] != ls {
					panic(fmt.Sprintf("atm: host %d on leaf %d is in shard %d, leaf is in shard %d (partition must be leaf-aligned)",
						i, li, plan.HostShard[i], ls))
				}
				port := leaf.AttachPort(drvs[i].Adapter)
				f.hosts[i] = fabricHost{drv: drvs[i], sw: leaf, leaf: li, port: port}
			}
			f.leafUp[li], f.coreDown[li] = ConnectTrunk(leaf, f.Core, model)
			if ls != 0 {
				cutTrunk(plan, ls, leaf.ports[f.leafUp[li]], f.Core.ports[f.coreDown[li]])
			}
		}
	default:
		panic(fmt.Sprintf("atm: unknown fabric kind %d", int(kind)))
	}
	for i, d := range drvs {
		i := i // pre-1.22 loop-variable capture
		f.byAddr[d.IP.Addr] = i
		d.SetupVC = func(dst uint32) (uint16, bool) { return f.setupSharded(i, dst) }
		d.TeardownVC = func(dst uint32) { f.teardownSharded(i, dst) }
	}
	return f
}

// cutHostLink cuts the fiber between a host adapter (in shard s) and its
// switch port (in shard 0) in both directions.
func cutHostLink(plan *ShardPlan, s int, a *Adapter, p *Port) {
	a.SetCut(func(scheduleAt, at sim.Time, c Cell) {
		plan.StageCell(s, 0, scheduleAt, at, p, c)
	})
	p.SetCut(func(scheduleAt, at sim.Time, c Cell) {
		plan.StageCell(0, s, scheduleAt, at, a, c)
	})
}

// cutTrunk cuts the inter-switch fiber between a leaf's up port (in
// shard s) and the spine's down port (in shard 0) in both directions.
func cutTrunk(plan *ShardPlan, s int, up, down *Port) {
	up.SetCut(func(scheduleAt, at sim.Time, c Cell) {
		plan.StageCell(s, 0, scheduleAt, at, down, c)
	})
	down.SetCut(func(scheduleAt, at sim.Time, c Cell) {
		plan.StageCell(0, s, scheduleAt, at, up, c)
	})
}

// setupSharded is setup for a sharded fabric: the route memory is
// partitioned by source shard, hops on switches inside the caller's
// shard install immediately (exactly as serial setup would), and the
// remainder of the path is staged for the coordinator to install at the
// next round barrier. The staged install always lands before the flow's
// first data cell can reach those switches: that cell must itself cross
// a cut, which delays it past the barrier.
//
// Trunk VCIs allocated by the coordinator are deterministic — barrier
// apply order is (shard, staging order), a pure function of the
// simulation — but not necessarily the numbers a serial run would pick.
// That is invisible: VCI values appear in no result, trace, or counter;
// only the path shape and timing do, and those are identical.
func (f *Fabric) setupSharded(src int, dstAddr uint32) (uint16, bool) {
	dst, ok := f.byAddr[dstAddr]
	if !ok || dst == src {
		return 0, false
	}
	s := f.plan.HostShard[src]
	rm := f.shardRoutes[s]
	key := flowKey{src, dst}
	if rt, ok := rm[key]; ok {
		return rt.txVCI, true
	}
	hs, hd := &f.hosts[src], &f.hosts[dst]
	rt := &route{
		txVCI: DefaultVCI + uint16(dst),
		rxVCI: DefaultVCI + uint16(src),
	}
	env := f.plan.Envs[s]
	if hs.sw == hd.sw {
		// Same switch (hub, or two hosts on one leaf): a single entry,
		// staged only when that switch lives in another shard.
		if hs.sw.env == env {
			hs.sw.AddVC(hs.port, rt.txVCI, hd.port, rt.rxVCI)
		} else {
			sw, in, inVCI, out, outVCI := hs.sw, hs.port, rt.txVCI, hd.port, rt.rxVCI
			f.plan.StageCtl(s, func() { sw.AddVC(in, inVCI, out, outVCI) })
		}
		rt.hops = []hop{{sw: hs.sw, port: hs.port, vci: rt.txVCI}}
	} else {
		// Cross-leaf. The source leaf always lives in the caller's shard
		// (leaf-aligned partition), so the first hop — and the up-trunk
		// VCI the first data cell must carry — installs immediately.
		up, down := f.leafUp[hs.leaf], f.coreDown[hd.leaf]
		upAlloc := hs.sw.ports[up].vci
		downAlloc := f.Core.ports[down].vci
		v1 := upAlloc.get()
		hs.sw.AddVC(hs.port, rt.txVCI, up, v1)
		rt.hops = []hop{{sw: hs.sw, port: hs.port, vci: rt.txVCI}}
		coreIn, leafIn := f.coreDown[hs.leaf], f.leafUp[hd.leaf]
		// A hop may wait for the barrier only when its switch sits behind
		// a cut from the caller — then the flow's first data cell, which
		// must cross that same cut, cannot beat the install. A hop inside
		// the caller's shard is reachable within the current window, so it
		// must install now, exactly as serial setup would; deferring it
		// drops the first cells as unrouted and diverges from serial.
		if f.Core.env == env {
			// Shard-0 source: the spine is in this shard, install it now.
			v2 := downAlloc.get()
			f.Core.AddVC(coreIn, v1, down, v2)
			rt.hops = append(rt.hops, hop{sw: f.Core, port: coreIn, vci: v1, alloc: upAlloc})
			if hd.sw.env == env {
				hd.sw.AddVC(leafIn, v2, hd.port, rt.rxVCI)
				rt.hops = append(rt.hops, hop{sw: hd.sw, port: leafIn, vci: v2, alloc: downAlloc})
			} else {
				dleaf, dport, rx := hd.sw, hd.port, rt.rxVCI
				f.plan.StageCtl(s, func() {
					dleaf.AddVC(leafIn, v2, dport, rx)
					rt.hops = append(rt.hops, hop{sw: dleaf, port: leafIn, vci: v2, alloc: downAlloc})
				})
			}
		} else {
			// The spine is behind the caller's trunk cut, and every cell
			// toward the destination leaf passes through it first — so the
			// whole remainder can wait for the barrier, even when the
			// destination leaf shares the caller's shard.
			core, dleaf, dport, rx := f.Core, hd.sw, hd.port, rt.rxVCI
			f.plan.StageCtl(s, func() {
				v2 := downAlloc.get()
				core.AddVC(coreIn, v1, down, v2)
				dleaf.AddVC(leafIn, v2, dport, rx)
				rt.hops = append(rt.hops,
					hop{sw: core, port: coreIn, vci: v1, alloc: upAlloc},
					hop{sw: dleaf, port: leafIn, vci: v2, alloc: downAlloc})
			})
		}
	}
	rm[key] = rt
	f.setUps[s]++
	return rt.txVCI, true
}

// teardownSharded rejects VC reclamation in sharded runs. Teardown only
// fires under Driver.TxVCLimit, which no sharded workload sets: tearing
// a path down at a barrier boundary would unroute cells the serial run
// delivered, breaking bit-identity, so it fails loudly instead.
func (f *Fabric) teardownSharded(src int, dstAddr uint32) {
	panic(fmt.Sprintf("atm: host %d tore down its VC to %08x in a sharded run; TxVCLimit must stay 0 under sharding", src, dstAddr))
}
